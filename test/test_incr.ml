(* Tests for the incremental compression engine (lib/incr): the delta
   model (diff/apply inverses), the policy-signature cache, the seeded
   refinement (snapshot/merge support in Union_split_find), and the
   headline property — an incrementally maintained abstraction is equal
   to a from-scratch compression after every delta.

   The QCheck iteration count defaults to a small CI-friendly number and
   scales with FUZZ_COUNT (e.g. `FUZZ_COUNT=500 dune exec
   test/test_incr.exe`). *)

let fuzz_count =
  match Option.bind (Sys.getenv_opt "FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 40

(* --- Union_split_find: snapshot restore and merge --------------------- *)

let test_of_class_array () =
  let p = Union_split_find.create 6 in
  ignore (Union_split_find.split p [ 0; 2 ]);
  ignore (Union_split_find.split p [ 5 ]);
  let q = Union_split_find.of_class_array (Union_split_find.to_class_array p) in
  Alcotest.(check bool) "restored equal" true (Union_split_find.equal p q);
  let r = Union_split_find.of_class_array (Union_split_find.canonical p) in
  Alcotest.(check bool) "canonical restored equal" true
    (Union_split_find.equal p r);
  Alcotest.(check int) "num_classes" 3 (Union_split_find.num_classes q)

let test_of_class_array_empty () =
  let p = Union_split_find.of_class_array [||] in
  Alcotest.(check int) "empty length" 0 (Union_split_find.length p);
  Alcotest.(check int) "empty classes" 0 (Union_split_find.num_classes p)

let test_merge () =
  let p = Union_split_find.create 6 in
  ignore (Union_split_find.split p [ 0; 2 ]);
  ignore (Union_split_find.split p [ 5 ]);
  ignore (Union_split_find.merge p 0 5);
  Alcotest.(check int) "classes after merge" 2 (Union_split_find.num_classes p);
  Alcotest.(check bool) "0 and 5 together" true
    (Union_split_find.find p 0 = Union_split_find.find p 5);
  let c = Union_split_find.merge p 0 0 in
  Alcotest.(check int) "self-merge is a no-op" c (Union_split_find.find p 0);
  ignore (Union_split_find.merge p 0 1);
  Alcotest.(check int) "all merged" 1 (Union_split_find.num_classes p);
  Alcotest.(check (list int)) "members sorted" [ 0; 1; 2; 3; 4; 5 ]
    (Union_split_find.members p (Union_split_find.find p 3))

(* --- Bdd.stats -------------------------------------------------------- *)

let test_bdd_stats () =
  let m = Bdd.man () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  let s0 = Bdd.stats m in
  let x = Bdd.and_ m a b in
  let y = Bdd.and_ m a b in
  Alcotest.(check bool) "hash-consed" true (x == y);
  let s1 = Bdd.stats m in
  Alcotest.(check bool) "apply memo hit counted" true
    (s1.Bdd.apply_hits > s0.Bdd.apply_hits);
  Alcotest.(check bool) "node table grew" true (s1.Bdd.nodes > 0)

(* --- Delta: diff/apply ------------------------------------------------ *)

let fattree4 () = Synthesis.fattree_shortest_path (Generators.fattree ~k:4)

let test_diff_identity () =
  let net = fattree4 () in
  Alcotest.(check int) "diff net net = []" 0 (List.length (Delta.diff net net));
  let ring = Synthesis.ring_bgp ~n:6 in
  Alcotest.(check int) "diff ring ring = []" 0
    (List.length (Delta.diff ring ring))

let test_diff_apply_roundtrip () =
  let a = Synthesis.ring_bgp ~n:6 in
  let b = Synthesis.random_network ~n:9 ~seed:7 in
  let ds = Delta.diff a b in
  Alcotest.(check bool) "nonempty diff" true (ds <> []);
  let b' = Delta.apply a ds in
  Alcotest.(check int) "apply(a, diff a b) ~ b" 0
    (List.length (Delta.diff b' b));
  (* and the other way round *)
  let ds' = Delta.diff b a in
  let a' = Delta.apply b ds' in
  Alcotest.(check int) "apply(b, diff b a) ~ a" 0
    (List.length (Delta.diff a' a))

let test_apply_link_down_purges () =
  let net = Synthesis.ring_bgp ~n:5 in
  let g = net.Device.graph in
  let n0 = Graph.name g 0 and n1 = Graph.name g 1 in
  let net' = Delta.apply net [ Delta.Link_down (n0, n1) ] in
  (match Device.validate net' with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invalid after link down: %s" m);
  let g' = net'.Device.graph in
  Alcotest.(check bool) "edge gone" false (Graph.has_edge g' 0 1);
  Alcotest.(check bool) "bgp session gone" true
    (Device.bgp_neighbor_config net'.Device.routers.(0) 1 = None)

let test_apply_invalid () =
  let net = Synthesis.ring_bgp ~n:5 in
  Alcotest.check_raises "unknown router"
    (Invalid_argument "Delta: unknown router \"nope\"") (fun () ->
      ignore (Delta.apply net [ Delta.Node_remove "nope" ]))

(* --- Sig_cache -------------------------------------------------------- *)

let test_sig_cache_hits () =
  let net = fattree4 () in
  let cache = Sig_cache.create net in
  let ec = List.hd (Ecs.compute net) in
  let dest = ec.Ecs.ec_prefix in
  let rm = net.Device.routers.(0).Device.bgp_neighbors |> List.hd |> snd in
  let b1 = Sig_cache.rm_bdd cache ~dest rm.Device.import_rm in
  let b2 = Sig_cache.rm_bdd cache ~dest rm.Device.import_rm in
  Alcotest.(check bool) "same bdd" true (b1 == b2);
  let hits, misses = Sig_cache.stats cache in
  Alcotest.(check int) "one hit" 1 hits;
  Alcotest.(check int) "one miss" 1 misses;
  Alcotest.(check bool) "compatible with itself" true
    (Sig_cache.compatible cache net)

(* --- incremental ≡ scratch ------------------------------------------- *)

let canon_groups (a : Abstraction.t) =
  let m = Hashtbl.create 16 in
  Array.map
    (fun g ->
      match Hashtbl.find_opt m g with
      | Some i -> i
      | None ->
        let i = Hashtbl.length m in
        Hashtbl.add m g i;
        i)
    a.Abstraction.group_of

let results_equal (got : Bonsai_api.ec_result list)
    (want : Bonsai_api.ec_result list) =
  List.length got = List.length want
  && List.for_all2
       (fun (g : Bonsai_api.ec_result) (w : Bonsai_api.ec_result) ->
         Prefix.equal g.ec.Ecs.ec_prefix w.ec.Ecs.ec_prefix
         && canon_groups g.abstraction = canon_groups w.abstraction
         && Array.for_all2 ( = )
              (Array.map
                 (fun u -> g.abstraction.Abstraction.copies.(g.abstraction.Abstraction.group_of.(u)))
                 (Array.init (Array.length g.abstraction.Abstraction.group_of) Fun.id))
              (Array.map
                 (fun u -> w.abstraction.Abstraction.copies.(w.abstraction.Abstraction.group_of.(u)))
                 (Array.init (Array.length w.abstraction.Abstraction.group_of) Fun.id)))
       got want

let check_against_scratch st =
  let net = Incr.network st in
  match Bonsai_api.compress net with
  | Error e ->
    QCheck.Test.fail_reportf "scratch compress failed: %s"
      (Format.asprintf "%a" Bonsai_error.pp e)
  | Ok scratch ->
    let got = (Incr.summary st).Bonsai_api.results in
    if not (results_equal got scratch.Bonsai_api.results) then
      QCheck.Test.fail_reportf
        "incremental result differs from scratch (%d vs %d classes)"
        (List.length got)
        (List.length scratch.Bonsai_api.results)
    else true

(* A random valid delta for the current network. Covers the engine's
   paths: link churn (seeded), route-map edits that change the attribute
   universe (full rebuild), statics and redistributions (non-seedable →
   scratch), origination changes (added/dropped classes), node addition
   (full rebuild). *)
let lp_bump : Route_map.t =
  [ { Route_map.verdict = Route_map.Permit; conds = []; actions = [ Route_map.Set_local_pref 200 ] } ]

let random_delta rng (net : Device.network) =
  let g = net.Device.graph in
  let n = Graph.n_nodes g in
  let name i = Graph.name g i in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let random_node () = Random.State.int rng n in
  let links =
    Graph.edges g
    |> List.filter_map (fun (u, v) -> if u < v then Some (u, v) else None)
  in
  let non_links =
    let out = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if not (Graph.has_edge g u v) then out := (u, v) :: !out
      done
    done;
    !out
  in
  let bgp_edges =
    List.filter
      (fun (u, v) ->
        Device.bgp_neighbor_config net.Device.routers.(u) v <> None)
      (Graph.edges g)
  in
  let candidates =
    (if links <> [] then
       [
         (fun () ->
           let u, v = pick links in
           Delta.Link_down (name u, name v));
         (fun () ->
           let u, v = pick links in
           Delta.Ospf_link_set
             {
               node = name u;
               nbr = name v;
               link = Some { Device.cost = 1 + Random.State.int rng 4; area = 0 };
             });
       ]
     else [])
    @ (if non_links <> [] then
         [
           (fun () ->
             let u, v = pick non_links in
             Delta.Link_up (name u, name v));
         ]
       else [])
    @ (if bgp_edges <> [] then
         [
           (fun () ->
             let u, v = pick bgp_edges in
             Delta.Route_map_set
               {
                 node = name u;
                 nbr = name v;
                 dir = Delta.Import;
                 rm =
                   pick [ None; Some lp_bump; Some Route_map.permit_all ];
               });
           (fun () ->
             let u, v = pick bgp_edges in
             Delta.Bgp_neighbor_set { node = name u; nbr = name v; config = None });
           (fun () ->
             let u, v = pick bgp_edges in
             Delta.Acl_set
               {
                 node = name u;
                 nbr = name v;
                 acl =
                   (if Random.State.bool rng then None
                    else
                      Some
                        [ { Acl.permit = false; prefix = Prefix.of_string "10.0.0.0/8" } ]);
               });
         ]
       else [])
    @ [
        (fun () ->
          let u = random_node () in
          let nbrs = Graph.succ g u in
          if Array.length nbrs = 0 then
            Delta.Static_set { node = name u; routes = [] }
          else
            Delta.Static_set
              {
                node = name u;
                routes =
                  [
                    ( Prefix.of_string "10.0.0.0/8",
                      name nbrs.(Random.State.int rng (Array.length nbrs)) );
                  ];
              });
        (fun () ->
          let u = random_node () in
          Delta.Originate_set
            {
              node = name u;
              prefixes = [ Synthesis.prefix_of_index (200 + u) ];
            });
        (fun () ->
          Delta.Node_add (Printf.sprintf "new%d" (Random.State.int rng 10000)));
        (fun () ->
          let u = random_node () in
          Delta.Ospf_area_set { node = name u; area = Random.State.int rng 3 });
      ]
  in
  (pick candidates) ()

let exercise_net mk_net =
  QCheck.Test.make ~count:fuzz_count
    ~name:"incremental ≡ scratch under random deltas"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let net = mk_net seed in
      match Incr.init net with
      | Error e ->
        QCheck.Test.fail_reportf "init failed: %s"
          (Format.asprintf "%a" Bonsai_error.pp e)
      | Ok st ->
        let steps = 1 + Random.State.int rng 3 in
        let ok = ref (check_against_scratch st) in
        for _ = 1 to steps do
          if !ok then begin
            let d = random_delta rng (Incr.network st) in
            match Incr.recompress st [ d ] with
            | Ok _ -> ok := check_against_scratch st
            | Error (Bonsai_error.Compile_error _) ->
              (* a delta can invalidate the network (e.g. node add leaves
                 it disconnected from configs' perspective); skipping it
                 keeps the state consistent, which is what we assert *)
              ok := check_against_scratch st
            | Error e ->
              QCheck.Test.fail_reportf "recompress failed: %s"
                (Format.asprintf "%a" Bonsai_error.pp e)
          end
        done;
        !ok)

let prop_ring = exercise_net (fun seed -> Synthesis.ring_bgp ~n:(4 + (seed mod 5)))
let prop_fattree = exercise_net (fun _ -> fattree4 ())

let prop_random =
  exercise_net (fun seed -> Synthesis.random_network ~n:8 ~seed)

let prop_multi =
  exercise_net (fun seed -> Synthesis.random_multi_network ~n:8 ~seed)

(* --- engine classification ------------------------------------------- *)

let test_reuse_on_remote_change () =
  (* fattree: changing one edge router's ACL far from most destinations
     must reuse every class not involving the touched router *)
  let net = fattree4 () in
  match Incr.init net with
  | Error e -> Alcotest.failf "init: %a" Bonsai_error.pp e
  | Ok st -> (
    let g = net.Device.graph in
    let u = 0 in
    let v = (Graph.succ g u).(0) in
    let d =
      Delta.Acl_set
        {
          node = Graph.name g u;
          nbr = Graph.name g v;
          acl = Some [ { Acl.permit = true; prefix = Prefix.of_string "10.0.0.0/8" } ];
        }
    in
    match Incr.recompress st [ d ] with
    | Error e -> Alcotest.failf "recompress: %a" Bonsai_error.pp e
    | Ok r ->
      Alcotest.(check bool) "not a full rebuild" false r.Incr.r_full_rebuild;
      Alcotest.(check bool) "some classes reused" true (r.Incr.r_reused > 0);
      Alcotest.(check bool) "no scratch recompute" true (r.Incr.r_scratch = 0);
      Alcotest.(check bool) "consistent with scratch" true
        (check_against_scratch st))

let test_noop_recompress_reuses_all () =
  let net = Synthesis.ring_bgp ~n:8 in
  match Incr.init net with
  | Error e -> Alcotest.failf "init: %a" Bonsai_error.pp e
  | Ok st -> (
    match Incr.recompress st [] with
    | Error e -> Alcotest.failf "recompress: %a" Bonsai_error.pp e
    | Ok r ->
      Alcotest.(check int) "all reused" r.Incr.r_ecs r.Incr.r_reused;
      Alcotest.(check int) "none seeded" 0 r.Incr.r_seeded;
      Alcotest.(check int) "none scratch" 0 r.Incr.r_scratch)

let test_node_add_full_rebuild () =
  let net = Synthesis.ring_bgp ~n:6 in
  match Incr.init net with
  | Error e -> Alcotest.failf "init: %a" Bonsai_error.pp e
  | Ok st -> (
    match Incr.recompress st [ Delta.Node_add "spare" ] with
    | Error e -> Alcotest.failf "recompress: %a" Bonsai_error.pp e
    | Ok r ->
      Alcotest.(check bool) "full rebuild" true r.Incr.r_full_rebuild;
      Alcotest.(check bool) "consistent" true (check_against_scratch st))

let test_pins_preserved () =
  let net = Synthesis.ring_bgp ~n:8 in
  match Incr.init ~pinned:[ 3 ] net with
  | Error e -> Alcotest.failf "init: %a" Bonsai_error.pp e
  | Ok st -> (
    let g = (Incr.network st).Device.graph in
    let d =
      Delta.Acl_set
        {
          node = Graph.name g 0;
          nbr = Graph.name g 1;
          acl = Some [ { Acl.permit = true; prefix = Prefix.of_string "10.0.0.0/8" } ];
        }
    in
    match Incr.recompress st [ d ] with
    | Error e -> Alcotest.failf "recompress: %a" Bonsai_error.pp e
    | Ok _ ->
      List.iter
        (fun (r : Bonsai_api.ec_result) ->
          let a = r.Bonsai_api.abstraction in
          let grp = a.Abstraction.group_of.(3) in
          Alcotest.(check (list int))
            "pinned node stays a singleton group" [ 3 ]
            a.Abstraction.groups.(grp))
        (Incr.summary st).Bonsai_api.results)

let test_budget_degrades () =
  let net = fattree4 () in
  match Incr.init net with
  | Error e -> Alcotest.failf "init: %a" Bonsai_error.pp e
  | Ok st -> (
    let g = (Incr.network st).Device.graph in
    let d = Delta.Link_down (Graph.name g 0, Graph.name g (Graph.succ g 0).(0)) in
    match Incr.recompress ~budget:(Budget.create ~max_ticks:3 ()) st [ d ] with
    | Error e -> Alcotest.failf "recompress: %a" Bonsai_error.pp e
    | Ok r ->
      Alcotest.(check bool) "degraded" true (r.Incr.r_degradation <> None);
      let s = Incr.summary st in
      Alcotest.(check bool) "summary carries degradation" true
        (s.Bonsai_api.degradation <> None))

let test_recertify_reused () =
  (* with --certify, every reused/seeded class must pass the independent
     checker before being trusted; none should be refuted on an honest
     engine, and the count must cover everything that skipped scratch *)
  let net = fattree4 () in
  match Incr.init net with
  | Error e -> Alcotest.failf "init: %a" Bonsai_error.pp e
  | Ok st -> (
    let g = net.Device.graph in
    let u = 0 in
    let v = (Graph.succ g u).(0) in
    let d =
      Delta.Acl_set
        {
          node = Graph.name g u;
          nbr = Graph.name g v;
          acl = Some [ { Acl.permit = true; prefix = Prefix.of_string "10.0.0.0/8" } ];
        }
    in
    match Incr.recompress ~recertify:Certify.Sample st [ d ] with
    | Error e -> Alcotest.failf "recompress: %a" Bonsai_error.pp e
    | Ok r ->
      Alcotest.(check bool) "some classes reused" true (r.Incr.r_reused > 0);
      Alcotest.(check int) "reused + seeded all certified"
        (r.Incr.r_reused + r.Incr.r_seeded)
        r.Incr.r_recertified;
      Alcotest.(check int) "none refuted" 0 r.Incr.r_recert_refuted;
      Alcotest.(check bool) "consistent with scratch" true
        (check_against_scratch st))

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "incr"
    [
      ( "union-split-find",
        [
          Alcotest.test_case "of_class_array" `Quick test_of_class_array;
          Alcotest.test_case "of_class_array empty" `Quick
            test_of_class_array_empty;
          Alcotest.test_case "merge" `Quick test_merge;
        ] );
      ("bdd-stats", [ Alcotest.test_case "stats" `Quick test_bdd_stats ]);
      ( "delta",
        [
          Alcotest.test_case "diff identity" `Quick test_diff_identity;
          Alcotest.test_case "diff/apply roundtrip" `Quick
            test_diff_apply_roundtrip;
          Alcotest.test_case "link down purges" `Quick
            test_apply_link_down_purges;
          Alcotest.test_case "invalid delta" `Quick test_apply_invalid;
        ] );
      ("sig-cache", [ Alcotest.test_case "hits" `Quick test_sig_cache_hits ]);
      ( "engine",
        [
          Alcotest.test_case "noop reuses all" `Quick
            test_noop_recompress_reuses_all;
          Alcotest.test_case "remote change reuses" `Quick
            test_reuse_on_remote_change;
          Alcotest.test_case "node add rebuilds" `Quick
            test_node_add_full_rebuild;
          Alcotest.test_case "pins preserved" `Quick test_pins_preserved;
          Alcotest.test_case "budget degrades" `Quick test_budget_degrades;
          Alcotest.test_case "recertify covers reuse" `Quick
            test_recertify_reused;
        ] );
      qsuite "fuzz" [ prop_ring; prop_fattree; prop_random; prop_multi ];
    ]

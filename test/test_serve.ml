(* Tests for the resident engine (lib/serve): the JSON codec, protocol
   framing, the bounded admission queue, the checkpoint format's three
   corruption guards, the engine's crash-proof request boundary (budget
   isolation, typed errors, warm-state restore), and the Sig_cache LRU
   eviction the engine relies on to stay bounded.

   The QCheck iteration count defaults to a small CI-friendly number and
   scales with FUZZ_COUNT (e.g. `FUZZ_COUNT=500 dune exec
   test/test_serve.exe`). *)

let fuzz_count =
  match Option.bind (Sys.getenv_opt "FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 40

(* --- Json -------------------------------------------------------------- *)

let sample_values =
  [
    Json.Null;
    Json.Bool true;
    Json.Int (-42);
    Json.Float 1.5;
    Json.String "plain";
    Json.String "esc \"quote\" \\ back \n tab \t nul \x00 high \xc3\xa9";
    Json.List [ Json.Int 1; Json.Null; Json.List [] ];
    Json.Obj
      [
        ("a", Json.Int 1);
        ("nested", Json.Obj [ ("b", Json.List [ Json.Bool false ]) ]);
        ("", Json.String "empty key");
      ];
  ]

let test_json_roundtrip () =
  List.iter
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' ->
        Alcotest.(check bool)
          (Printf.sprintf "roundtrip %s" (Json.to_string v))
          true (Json.equal v v')
      | Error m -> Alcotest.failf "reparse failed: %s" m)
    sample_values

let test_json_rejects () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [
      "";
      "{";
      "[1,]";
      "{\"a\":}";
      "tru";
      "1 2";
      "\"unterminated";
      "{\"a\" 1}";
      "nan";
      (* nesting beyond the depth bound must be an error, not a stack
         overflow *)
      String.concat "" (List.init 500 (fun _ -> "["))
      ^ String.concat "" (List.init 500 (fun _ -> "]"));
    ]

let test_json_nonfinite () =
  Alcotest.(check string)
    "nan renders null" "null"
    (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string)
    "inf renders null" "null"
    (Json.to_string (Json.Float Float.infinity))

(* --- Protocol ----------------------------------------------------------- *)

let test_protocol_parse () =
  (match Protocol.parse_request "{\"id\":7,\"op\":\"health\"}" with
  | Ok r ->
    Alcotest.(check bool) "id echoed" true (Json.equal r.Protocol.req_id (Json.Int 7));
    Alcotest.(check string) "op" "health" r.Protocol.req_op
  | Error m -> Alcotest.failf "parse failed: %s" m);
  List.iter
    (fun s ->
      match Protocol.parse_request s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [
      "[]";
      "{}";
      "{\"op\":\"\"}";
      "{\"op\":3}";
      "not json";
      String.make (Protocol.max_line_bytes + 1) 'x';
    ]

let test_protocol_exit_codes () =
  let check cls code =
    Alcotest.(check int) cls code (Protocol.exit_code_of_class cls)
  in
  check "budget-exceeded" 3;
  check "parse-error" 4;
  check "compile-error" 5;
  check "divergence" 6;
  check "soundness-break" 7;
  check "internal" 9;
  check "bad-request" 124;
  check "overloaded" 11;
  check "never-heard-of-it" 9

(* --- Scheduler ---------------------------------------------------------- *)

let test_scheduler_fifo_and_shed () =
  let q = Scheduler.create ~max_inflight:2 in
  Alcotest.(check bool) "a admitted" true
    (match Scheduler.submit q "a" with `Admitted -> true | `Shed _ -> false);
  Alcotest.(check bool) "b admitted" true
    (match Scheduler.submit q "b" with `Admitted -> true | `Shed _ -> false);
  (match Scheduler.submit q "c" with
  | `Admitted -> Alcotest.fail "c must be shed"
  | `Shed retry ->
    Alcotest.(check int) "deterministic retry hint" 200 retry);
  Alcotest.(check (option string)) "fifo" (Some "a") (Scheduler.take q);
  Alcotest.(check bool) "room again" true
    (match Scheduler.submit q "c" with `Admitted -> true | `Shed _ -> false);
  Alcotest.(check (option string)) "fifo 2" (Some "b") (Scheduler.take q);
  Alcotest.(check (option string)) "fifo 3" (Some "c") (Scheduler.take q);
  Alcotest.(check (option string)) "empty" None (Scheduler.take q);
  Alcotest.(check int) "admitted count" 3 (Scheduler.admitted q);
  Alcotest.(check int) "shed count" 1 (Scheduler.shed q);
  Alcotest.check_raises "max_inflight < 1 rejected"
    (Invalid_argument "Scheduler.create: max_inflight < 1") (fun () ->
      ignore (Scheduler.create ~max_inflight:0))

(* --- Sig_cache LRU eviction -------------------------------------------- *)

let test_sig_cache_eviction () =
  let net = Synthesis.ring_bgp ~n:4 in
  let cache = Sig_cache.create ~max_entries:2 net in
  let p n = Prefix.of_string (Printf.sprintf "10.0.%d.0/24" n) in
  let b0 = Sig_cache.rm_bdd cache ~dest:(p 0) None in
  ignore (Sig_cache.rm_bdd cache ~dest:(p 1) None);
  Alcotest.(check int) "full" 2 (Sig_cache.length cache);
  Alcotest.(check int) "no evictions yet" 0 (Sig_cache.evictions cache);
  (* touch p0 so p1 is the LRU victim *)
  ignore (Sig_cache.rm_bdd cache ~dest:(p 0) None);
  ignore (Sig_cache.rm_bdd cache ~dest:(p 2) None);
  Alcotest.(check int) "capped" 2 (Sig_cache.length cache);
  Alcotest.(check int) "one eviction" 1 (Sig_cache.evictions cache);
  let hits_before, misses_before = Sig_cache.stats cache in
  (* p0 survived (touched): a hit. p1 was evicted: re-encodes as a miss,
     but into the same hash-consed manager — the identical BDD node. *)
  let b0' = Sig_cache.rm_bdd cache ~dest:(p 0) None in
  Alcotest.(check bool) "touched entry survived" true (b0 == b0');
  ignore (Sig_cache.rm_bdd cache ~dest:(p 1) None);
  let hits_after, misses_after = Sig_cache.stats cache in
  Alcotest.(check int) "survivor hit" (hits_before + 1) hits_after;
  Alcotest.(check int) "evictee re-encoded" (misses_before + 1) misses_after;
  Alcotest.(check int) "cap accessor" 2 (Sig_cache.max_entries cache);
  Alcotest.check_raises "max_entries < 1 rejected"
    (Invalid_argument "Sig_cache.create: max_entries < 1") (fun () ->
      ignore (Sig_cache.create ~max_entries:0 net))

(* --- Checkpoint --------------------------------------------------------- *)

let with_tmp f =
  let path = Filename.temp_file "bonsai_test" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_checkpoint_roundtrip () =
  with_tmp @@ fun path ->
  let v = [ ("ring:4", [ 1; 2; 3 ]); ("mesh:9", []) ] in
  (match Checkpoint.save ~path v with
  | Ok () -> ()
  | Error m -> Alcotest.failf "save: %s" m);
  match
    (Checkpoint.load ~path
      : ((string * int list) list, Checkpoint.load_error) result)
  with
  | Ok v' -> Alcotest.(check bool) "payload restored" true (v = v')
  | Error e -> Alcotest.failf "load: %a" Checkpoint.pp_load_error e

(* Durability: save must fsync the temp file before the rename and the
   containing directory after it — a rename-only save (the old path)
   leaves both the payload and the rename itself in the page cache, so a
   power cut after "save succeeded" could surface the stale or missing
   checkpoint. sync_count is the save path's witness counter. *)
let test_checkpoint_fsync () =
  with_tmp @@ fun path ->
  let before = Checkpoint.sync_count () in
  (match Checkpoint.save ~path [ 7; 8; 9 ] with
  | Ok () -> ()
  | Error m -> Alcotest.failf "save: %s" m);
  let synced = Checkpoint.sync_count () - before in
  Alcotest.(check bool)
    (Printf.sprintf "save fsyncs file and directory (saw %d)" synced)
    true (synced >= 2);
  match (Checkpoint.load ~path : (int list, Checkpoint.load_error) result) with
  | Ok v -> Alcotest.(check (list int)) "payload intact" [ 7; 8; 9 ] v
  | Error e -> Alcotest.failf "load: %a" Checkpoint.pp_load_error e

let read_file path = In_channel.with_open_bin path In_channel.input_all
let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let expect_load path expected =
  match (Checkpoint.load ~path : (int list, Checkpoint.load_error) result) with
  | Ok _ -> Alcotest.failf "load accepted a damaged checkpoint"
  | Error e -> (
    match (e, expected) with
    | Checkpoint.Corrupt _, `Corrupt
    | Checkpoint.Version_skew _, `Skew
    | Checkpoint.Missing, `Missing ->
      ()
    | _ ->
      Alcotest.failf "wrong error class: %a" Checkpoint.pp_load_error e)

let test_checkpoint_guards () =
  with_tmp @@ fun path ->
  (* missing: load before any save (the tmp file exists but is empty —
     an empty file has no header, i.e. Corrupt; true Missing needs no
     file at all) *)
  expect_load path `Corrupt;
  Sys.remove path;
  expect_load path `Missing;
  (match Checkpoint.save ~path [ 1; 2; 3 ] with
  | Ok () -> ()
  | Error m -> Alcotest.failf "save: %s" m);
  let good = read_file path in
  (* truncation: drop the last byte *)
  write_file path (String.sub good 0 (String.length good - 1));
  expect_load path `Corrupt;
  (* bit rot: flip one payload byte (keeps the length) *)
  let rotten = Bytes.of_string good in
  let last = Bytes.length rotten - 1 in
  Bytes.set rotten last (Char.chr (Char.code (Bytes.get rotten last) lxor 1));
  write_file path (Bytes.to_string rotten);
  expect_load path `Corrupt;
  (* version skew: a checkpoint from a "different build" (forged digest)
     must be refused before Marshal ever sees the payload *)
  let nl = String.index good '\n' in
  let header = String.sub good 0 nl in
  (match String.split_on_char ' ' header with
  | [ magic; version; _digest; md5; len ] ->
    let forged =
      String.concat " "
        [ magic; version; String.make 32 '0'; md5; len ]
      ^ String.sub good nl (String.length good - nl)
    in
    write_file path forged;
    expect_load path `Skew
  | _ -> Alcotest.fail "unexpected header shape");
  (* garbage *)
  write_file path "garbage without any newline";
  expect_load path `Corrupt

(* --- Serve_engine ------------------------------------------------------- *)

let resolve = function
  | "ring:4" -> Synthesis.ring_bgp ~n:4
  | "ring:6" -> Synthesis.ring_bgp ~n:6
  | "mesh:4" -> Synthesis.mesh_bgp ~n:4
  | s -> failwith ("unknown network " ^ s)

let engine () = Serve_engine.create ~resolve ()

let handle eng line = fst (Serve_engine.handle_line eng ~queue_depth:0 line)

let response_ok resp =
  match Json.parse resp with
  | Ok r -> (
    match Json.member "ok" r with
    | Some (Json.Bool b) -> b
    | _ -> Alcotest.failf "response without ok: %s" resp)
  | Error m -> Alcotest.failf "unparsable response %S: %s" resp m

let error_class resp =
  match Json.parse resp with
  | Ok r -> (
    match Option.bind (Json.member "error" r) (Json.member "class") with
    | Some (Json.String c) -> c
    | _ -> Alcotest.failf "response without error class: %s" resp)
  | Error m -> Alcotest.failf "unparsable response %S: %s" resp m

let test_engine_budget_isolation () =
  let eng = engine () in
  (* a starved request gets a typed budget-exceeded response ... *)
  let r1 =
    handle eng "{\"op\":\"compress\",\"network\":\"mesh:4\",\"budget_ticks\":1}"
  in
  Alcotest.(check bool) "starved request fails" false (response_ok r1);
  Alcotest.(check string) "typed class" "budget-exceeded" (error_class r1);
  (* ... and the poisoned state was NOT cached ... *)
  Alcotest.(check int) "degraded state not cached" 0
    (Serve_engine.networks eng);
  (* ... while the engine keeps answering everyone else *)
  let r2 = handle eng "{\"op\":\"compress\",\"network\":\"ring:4\"}" in
  Alcotest.(check bool) "next request unaffected" true (response_ok r2);
  (* opting in with "degrade": true turns the same starvation into an ok
     response that says what fell back *)
  let r3 =
    handle eng
      "{\"op\":\"compress\",\"network\":\"mesh:4\",\"budget_ticks\":1,\
       \"degrade\":true}"
  in
  Alcotest.(check bool) "degrade opt-in" true (response_ok r3)

let test_engine_typed_errors () =
  let eng = engine () in
  List.iter
    (fun (line, cls) ->
      let r = handle eng line in
      Alcotest.(check bool) (line ^ " fails") false (response_ok r);
      Alcotest.(check string) line cls (error_class r))
    [
      ("{\"op\":\"compress\"}", "bad-request");
      ("{\"op\":\"compress\",\"network\":\"nope:1\"}", "bad-request");
      ("{\"op\":\"compress\",\"network\":7}", "bad-request");
      ("{\"op\":\"frobnicate\"}", "bad-request");
      ("}{ not json", "bad-request");
      ("{\"op\":\"diff\",\"network\":\"ring:4\"}", "bad-request");
    ];
  (* six garbage requests later, the engine still works *)
  Alcotest.(check bool) "still alive" true
    (response_ok (handle eng "{\"op\":\"health\"}"))

let test_engine_shutdown_signal () =
  let eng = engine () in
  let resp, k = Serve_engine.handle_line eng ~queue_depth:0 "{\"op\":\"shutdown\"}" in
  Alcotest.(check bool) "shutdown ok" true (response_ok resp);
  Alcotest.(check bool) "signals shutdown" true
    (match k with `Shutdown -> true | `Continue -> false)

(* The crash-safety headline: warm state restored from a checkpoint
   answers bit-identically to the cold computation that produced it. *)
let test_engine_checkpoint_restore () =
  with_tmp @@ fun path ->
  let compress_line = "{\"op\":\"compress\",\"network\":\"ring:4\"}" in
  let cold_eng = engine () in
  let cold = handle cold_eng compress_line in
  Alcotest.(check bool) "cold ok" true (response_ok cold);
  (match Serve_engine.checkpoint cold_eng ~path with
  | Ok n -> Alcotest.(check int) "one network saved" 1 n
  | Error m -> Alcotest.failf "checkpoint: %s" m);
  let warm_eng = engine () in
  (match Serve_engine.restore warm_eng ~path with
  | `Restored n -> Alcotest.(check int) "one network restored" 1 n
  | `Version_skew m | `Corrupt m -> Alcotest.failf "restore went cold: %s" m
  | `Missing -> Alcotest.fail "restore found nothing");
  Alcotest.(check int) "registry warm before any request" 1
    (Serve_engine.networks warm_eng);
  let warm = handle warm_eng compress_line in
  Alcotest.(check string) "warm == cold, byte-identical" cold warm;
  (* the restored state must also keep *working* — recompress through it *)
  let diff =
    handle warm_eng "{\"op\":\"diff\",\"network\":\"ring:4\",\"to\":\"ring:6\"}"
  in
  Alcotest.(check bool) "restored state recompresses" true (response_ok diff)

let test_engine_corrupt_checkpoint_cold () =
  with_tmp @@ fun path ->
  write_file path "definitely not a checkpoint";
  let eng = engine () in
  (match Serve_engine.restore eng ~path with
  | `Corrupt _ -> ()
  | `Version_skew _ -> Alcotest.fail "garbage is corrupt, not version skew"
  | `Restored _ -> Alcotest.fail "restored garbage"
  | `Missing -> Alcotest.fail "file exists");
  (* cold rebuild, not a crash: the engine serves anyway *)
  Alcotest.(check bool) "serves cold" true
    (response_ok (handle eng "{\"op\":\"compress\",\"network\":\"ring:4\"}"))

let test_engine_lru_registry () =
  let eng =
    Serve_engine.create ~resolve ~max_networks:1 ()
  in
  ignore (handle eng "{\"op\":\"load\",\"network\":\"ring:4\"}");
  Alcotest.(check int) "one network" 1 (Serve_engine.networks eng);
  ignore (handle eng "{\"op\":\"load\",\"network\":\"ring:6\"}");
  Alcotest.(check int) "still one network" 1 (Serve_engine.networks eng)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.equal (String.sub haystack i nn) needle || go (i + 1))
  in
  go 0

(* The three cold-start causes are distinguishable: a checkpoint written
   by a different build must read as version skew (not generic
   corruption), and the status must reach the stats response. *)
let test_engine_version_skew_distinct () =
  with_tmp @@ fun path ->
  let payload = "x" in
  write_file path
    (Printf.sprintf "bonsai-checkpoint 1 %s %s %d\n%s" (String.make 32 '0')
       (Digest.to_hex (Digest.string payload))
       (String.length payload) payload);
  let eng = engine () in
  (match Serve_engine.restore eng ~path with
  | `Version_skew _ -> ()
  | `Restored _ -> Alcotest.fail "restored a foreign blob"
  | `Missing -> Alcotest.fail "file exists"
  | `Corrupt m -> Alcotest.failf "wrong-build digest is skew, got corrupt: %s" m);
  Alcotest.(check bool) "stats surfaces version-skew" true
    (contains (handle eng "{\"op\":\"stats\"}") "\"checkpoint\":\"version-skew\"");
  let eng' = engine () in
  (match Serve_engine.restore eng' ~path:(path ^ ".nope") with
  | `Missing -> ()
  | _ -> Alcotest.fail "absent file is Missing");
  Alcotest.(check bool) "stats surfaces missing" true
    (contains (handle eng' "{\"op\":\"stats\"}") "\"checkpoint\":\"missing\"")

(* The self-audit catches a silently corrupted warm abstraction: refute,
   quarantine, incident, and a rebuilt answer byte-identical to cold. *)
let test_engine_self_audit_quarantines () =
  let eng = engine () in
  let line = "{\"op\":\"compress\",\"network\":\"ring:4\"}" in
  let cold = handle eng line in
  Alcotest.(check bool) "cold ok" true (response_ok cold);
  (* the corruption hook is gated on the test environment *)
  Alcotest.(check bool) "test-corrupt gated off by default" true
    (contains
       (handle eng "{\"op\":\"test-corrupt\",\"network\":\"ring:4\"}")
       "unknown op");
  (match Serve_engine.audit_step eng with
  | Serve_engine.Audit_clean _ -> ()
  | _ -> Alcotest.fail "healthy warm state must audit clean");
  Unix.putenv "BONSAI_TEST_HOOKS" "1";
  let corrupted =
    handle eng "{\"op\":\"test-corrupt\",\"network\":\"ring:4\"}"
  in
  Unix.putenv "BONSAI_TEST_HOOKS" "0";
  Alcotest.(check bool) "corrupted" true (response_ok corrupted);
  (match Serve_engine.audit_step eng with
  | Serve_engine.Audit_quarantined (spec, _) ->
    Alcotest.(check string) "quarantined the corrupted network" "ring:4" spec
  | _ -> Alcotest.fail "audit must refute the corrupted state");
  (match Serve_engine.drain_incidents eng with
  | [ (spec, _) ] -> Alcotest.(check string) "one incident" "ring:4" spec
  | l -> Alcotest.failf "expected 1 incident, got %d" (List.length l));
  Alcotest.(check int) "entry evicted" 0 (Serve_engine.networks eng);
  Alcotest.(check string) "rebuilt answer == cold answer" cold
    (handle eng line);
  Alcotest.(check bool) "incident counted in stats" true
    (contains (handle eng "{\"op\":\"stats\"}") "\"incidents\":1")

(* --- Backoff (the bonsai-watch retry policy) ---------------------------- *)

let test_backoff_cap_and_reset () =
  let bo = Backoff.create ~base_ms:500 () in
  Alcotest.(check int) "healthy -> base" 500 (Backoff.sleep_ms bo);
  Alcotest.(check int) "first failure doubles" 1000 (Backoff.note_failure bo);
  for _ = 1 to 100 do
    ignore (Backoff.note_failure bo)
  done;
  Alcotest.(check int) "capped at 30s" 30_000 (Backoff.sleep_ms bo);
  Backoff.reset bo;
  Alcotest.(check int) "reset -> base" 500 (Backoff.sleep_ms bo)

let test_backoff_never_busy_loops () =
  (* a persistently failing source sleeps at least base_ms for ANY
     streak length — including ones where an unclamped 1-lsl-n shift
     would overflow — so the watcher can never spin *)
  let bo = Backoff.create ~base_ms:7 ~cap_ms:10_000 () in
  for i = 1 to 200 do
    let ms = Backoff.note_failure bo in
    if ms < 7 then Alcotest.failf "failure %d slept %dms < base" i ms;
    if ms > 10_000 then Alcotest.failf "failure %d slept %dms > cap" i ms
  done;
  Alcotest.(check int) "failures counted" 200 (Backoff.failures bo);
  Alcotest.(check int) "still exactly the cap" 10_000 (Backoff.sleep_ms bo)

let test_backoff_retry_semantics () =
  (* mid-write: the re-read sees the completed write *)
  let reads = ref 0 and slept = ref 0 in
  let parse s = if String.equal s "good" then Ok s else Error ("bad " ^ s) in
  let read () =
    incr reads;
    Ok "good"
  in
  let text, out =
    Backoff.parse_with_retry ~read ~parse
      ~sleep:(fun () -> incr slept)
      "half-writ"
  in
  Alcotest.(check string) "settled on the re-read" "good" text;
  (match out with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "retry should have parsed: %s" m);
  Alcotest.(check int) "slept once" 1 !slept;
  Alcotest.(check int) "re-read once" 1 !reads;
  (* a clean first parse never re-reads *)
  let reads2 = ref 0 in
  let _, out2 =
    Backoff.parse_with_retry
      ~read:(fun () ->
        incr reads2;
        Ok "ignored")
      ~parse
      ~sleep:(fun () -> ())
      "good"
  in
  (match out2 with Ok _ -> () | Error _ -> Alcotest.fail "clean parse");
  Alcotest.(check int) "no re-read on success" 0 !reads2

let test_backoff_retry_unchanged_keeps_first_error () =
  (* identical bytes on re-read: keep the FIRST error, don't burn a
     second parse on the same input *)
  let parse_calls = ref 0 in
  let parse s =
    incr parse_calls;
    Error (Printf.sprintf "err%d %s" !parse_calls s)
  in
  let text, out =
    Backoff.parse_with_retry
      ~read:(fun () -> Ok "same")
      ~parse
      ~sleep:(fun () -> ())
      "same"
  in
  Alcotest.(check string) "text unchanged" "same" text;
  (match out with
  | Error m -> Alcotest.(check string) "first error kept" "err1 same" m
  | Ok _ -> Alcotest.fail "should fail");
  Alcotest.(check int) "parsed once only" 1 !parse_calls;
  (* a failed re-read also keeps the first error *)
  let _, out2 =
    Backoff.parse_with_retry
      ~read:(fun () -> Error "gone")
      ~parse:(fun _ -> Error "e1")
      ~sleep:(fun () -> ())
      "t"
  in
  match out2 with
  | Error "e1" -> ()
  | _ -> Alcotest.fail "first error kept when the re-read fails"

(* --- fuzz: arbitrary bytes only ever produce typed responses ----------- *)

(* Random bytes, biased toward JSON-looking shards so the parser gets
   past the first token reasonably often. *)
let arb_line =
  QCheck.make
    QCheck.Gen.(
      frequency
        [
          (2, string_size ~gen:printable (int_range 0 200));
          (1, string_size ~gen:char (int_range 0 200));
          ( 2,
            string_size
              ~gen:(oneofl [ '{'; '}'; '"'; ':'; ','; 'a'; '0'; ' ' ])
              (int_range 0 60) );
          ( 2,
            map2
              (fun op k ->
                Printf.sprintf "{\"op\":%S,\"network\":\"ring:4\",\"k\":%d}"
                  op k)
              (string_size ~gen:printable (int_range 0 10))
              (int_range (-2) 20) );
        ])

let prop_total =
  QCheck.Test.make ~count:fuzz_count ~name:"handle_line is total"
    arb_line
    (fun line ->
      let eng = engine () in
      match Serve_engine.handle_line eng ~queue_depth:0 line with
      | resp, (`Continue | `Shutdown) -> (
        match Json.parse resp with
        | Ok r -> (
          match Json.member "ok" r with
          | Some (Json.Bool _) -> true
          | _ -> QCheck.Test.fail_reportf "no ok field: %s" resp)
        | Error m ->
          QCheck.Test.fail_reportf "unparsable response %S: %s" resp m)
      | exception e ->
        QCheck.Test.fail_reportf "handle_line raised %s on %S"
          (Printexc.to_string e) line)

let prop_json_roundtrip =
  let rec arb_json depth =
    let open QCheck.Gen in
    let str = string_size ~gen:printable (int_range 0 12) in
    let raw = string_size ~gen:char (int_range 0 12) in
    if depth = 0 then
      oneof
        [
          return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun i -> Json.Int i) (int_range (-100000) 100000);
          map (fun s -> Json.String s) str;
        ]
    else
      oneof
        [
          map
            (fun l -> Json.List l)
            (list_size (int_range 0 4) (arb_json (depth - 1)));
          map
            (fun kvs -> Json.Obj kvs)
            (list_size (int_range 0 4) (pair str (arb_json (depth - 1))));
          map (fun s -> Json.String s) raw;
        ]
  in
  QCheck.Test.make ~count:fuzz_count ~name:"to_string/parse roundtrip"
    (QCheck.make (arb_json 3))
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' -> Json.equal v v'
      | Error m ->
        QCheck.Test.fail_reportf "reparse of %s failed: %s" (Json.to_string v)
          m)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects" `Quick test_json_rejects;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "parse" `Quick test_protocol_parse;
          Alcotest.test_case "exit codes" `Quick test_protocol_exit_codes;
        ] );
      ( "scheduler",
        [ Alcotest.test_case "fifo and shed" `Quick test_scheduler_fifo_and_shed ] );
      ( "sig-cache",
        [ Alcotest.test_case "lru eviction" `Quick test_sig_cache_eviction ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "fsync before/after rename" `Quick
            test_checkpoint_fsync;
          Alcotest.test_case "corruption guards" `Quick test_checkpoint_guards;
        ] );
      ( "engine",
        [
          Alcotest.test_case "budget isolation" `Quick
            test_engine_budget_isolation;
          Alcotest.test_case "typed errors" `Quick test_engine_typed_errors;
          Alcotest.test_case "shutdown" `Quick test_engine_shutdown_signal;
          Alcotest.test_case "checkpoint restore == cold" `Quick
            test_engine_checkpoint_restore;
          Alcotest.test_case "corrupt checkpoint goes cold" `Quick
            test_engine_corrupt_checkpoint_cold;
          Alcotest.test_case "registry lru" `Quick test_engine_lru_registry;
          Alcotest.test_case "version skew distinct" `Quick
            test_engine_version_skew_distinct;
          Alcotest.test_case "self-audit quarantines" `Quick
            test_engine_self_audit_quarantines;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "cap and reset" `Quick test_backoff_cap_and_reset;
          Alcotest.test_case "never busy-loops" `Quick
            test_backoff_never_busy_loops;
          Alcotest.test_case "mid-write retry" `Quick
            test_backoff_retry_semantics;
          Alcotest.test_case "unchanged keeps first error" `Quick
            test_backoff_retry_unchanged_keeps_first_error;
        ] );
      qsuite "fuzz" [ prop_total; prop_json_roundtrip ];
    ]

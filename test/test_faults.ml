(* Fault-injection engine: scenario enumeration and sampling, re-solving
   under failures, divergence diagnosis, and abstraction soundness under
   failures (paper §9). *)

let ring n =
  Graph.of_links ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let path n =
  Graph.of_links ~n (List.init (n - 1) (fun i -> (i, i + 1)))

(* --- scenario enumeration and sampling ------------------------------- *)

let test_all_links () =
  Alcotest.(check int) "ring 6 links" 6 (List.length (Scenario.all_links (ring 6)));
  Alcotest.(check (list (pair int int)))
    "path links normalized"
    [ (0, 1); (1, 2) ]
    (Scenario.all_links (path 3))

let choose m k =
  let rec go m k = if k = 0 then 1 else go (m - 1) (k - 1) * m / k in
  go m k

let test_enumerate_counts () =
  let g = ring 6 in
  List.iter
    (fun k ->
      let expect =
        List.init k (fun i -> choose 6 (i + 1)) |> List.fold_left ( + ) 0
      in
      let scs = Scenario.enumerate ~k g in
      Alcotest.(check int)
        (Printf.sprintf "ring 6, k=%d" k)
        expect (List.length scs);
      Alcotest.(check int)
        (Printf.sprintf "count agrees, k=%d" k)
        (List.length scs) (Scenario.count ~k g);
      Alcotest.(check int)
        (Printf.sprintf "distinct, k=%d" k)
        (List.length scs)
        (List.length (List.sort_uniq Scenario.compare scs)))
    [ 1; 2; 3 ];
  (* size-major order: all singles before any pair *)
  let sizes = List.map Scenario.size (Scenario.enumerate ~k:2 g) in
  Alcotest.(check (list int))
    "size-major order"
    (List.init 6 (fun _ -> 1) @ List.init 15 (fun _ -> 2))
    sizes

let test_cut_links () =
  Alcotest.(check (list (pair int int)))
    "path: every link is a cut link"
    [ (0, 1); (1, 2) ]
    (Scenario.cut_links (path 3));
  Alcotest.(check (list (pair int int)))
    "ring has no cut link" [] (Scenario.cut_links (ring 5))

let test_sample () =
  (* barbell: two triangles joined by a bridge — the bridge must be
     sampled first *)
  let g =
    Graph.of_links ~n:6
      [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (4, 5); (3, 5) ]
  in
  let scs = Scenario.sample ~k:2 ~samples:5 ~seed:7 g in
  Alcotest.(check int) "sample count" 5 (List.length scs);
  Alcotest.(check int) "distinct" 5
    (List.length (List.sort_uniq Scenario.compare scs));
  Alcotest.(check bool)
    "bridge first" true
    (Scenario.equal (List.hd scs) (Scenario.make [ (2, 3) ]));
  List.iter
    (fun sc ->
      Alcotest.(check bool)
        "size within k" true
        (Scenario.size sc >= 1 && Scenario.size sc <= 2))
    scs;
  Alcotest.(check bool)
    "deterministic in seed" true
    (List.equal Scenario.equal scs (Scenario.sample ~k:2 ~samples:5 ~seed:7 g))

let test_apply () =
  let g = ring 4 in
  let sc = Scenario.make ~nodes:[ 2 ] [ (0, 1) ] in
  let g' = Scenario.apply g sc in
  Alcotest.(check int) "same node count" 4 (Graph.n_nodes g');
  Alcotest.(check string) "names survive" (Graph.name g 2) (Graph.name g' 2);
  Alcotest.(check int) "downed node isolated" 0
    (Array.length (Graph.succ g' 2));
  Alcotest.(check bool) "downed link gone (both ways)" false
    (Graph.has_edge g' 0 1 || Graph.has_edge g' 1 0);
  Alcotest.(check bool) "surviving link kept" true (Graph.has_edge g' 0 3)

(* --- the engine ------------------------------------------------------- *)

let test_survives () =
  Alcotest.(check bool)
    "downed dest" false
    (Fault_engine.survives (Scenario.make ~nodes:[ 0 ] []) ~dest:0);
  Alcotest.(check bool)
    "downed link touching dest is fine" true
    (Fault_engine.survives (Scenario.make [ (0, 1) ]) ~dest:0)

let test_engine_outcomes () =
  let srp = Rip.make (ring 4) ~dest:0 in
  (match Fault_engine.run srp (Scenario.make [ (1, 2) ]) with
  | Fault_engine.Stable sol ->
    Alcotest.(check bool) "ring survives one failure" true
      (List.init 4 Fun.id
      |> List.for_all (fun u -> u = 0 || Solution.reaches sol u))
  | _ -> Alcotest.fail "expected Stable");
  match Fault_engine.run srp (Scenario.make [ (1, 2); (2, 3) ]) with
  | Fault_engine.Disconnected (_, stranded) ->
    Alcotest.(check (list int)) "node 2 stranded" [ 2 ] stranded
  | _ -> Alcotest.fail "expected Disconnected"

let test_plan () =
  let g = ring 6 in
  let p = Fault_engine.plan ~k:2 g in
  Alcotest.(check bool) "small space is exhaustive" true
    p.Fault_engine.exhaustive;
  Alcotest.(check int) "all 21 scenarios" 21
    (List.length p.Fault_engine.scenarios);
  let p = Fault_engine.plan ~budget:10 ~k:2 g in
  Alcotest.(check bool) "over budget samples" false p.Fault_engine.exhaustive;
  let p = Fault_engine.plan ~samples:4 ~k:2 g in
  Alcotest.(check int) "forced samples" 4 (List.length p.Fault_engine.scenarios)

let test_survey () =
  let srp = Rip.make (ring 4) ~dest:0 in
  let plan = Fault_engine.plan ~k:2 (ring 4) in
  let r = Fault_engine.survey srp plan in
  (* C(4,1)+C(4,2) = 10 scenarios; a 4-ring tolerates any single failure
     but every pair of failures cuts some node off from the dest *)
  Alcotest.(check int) "total" 10
    (r.Fault_engine.n_stable + r.Fault_engine.n_disconnected
    + r.Fault_engine.n_diverged);
  Alcotest.(check int) "diverged" 0 r.Fault_engine.n_diverged;
  Alcotest.(check int) "singles all stable" 4 r.Fault_engine.n_stable;
  Alcotest.(check int) "every pair disconnects" 6
    r.Fault_engine.n_disconnected

let test_cache () =
  let srp = Rip.make (ring 4) ~dest:0 in
  let cache = Fault_engine.cache () in
  let sc = Scenario.make [ (1, 2) ] in
  let classify = function
    | Fault_engine.Stable _ -> "stable"
    | Fault_engine.Disconnected _ -> "disconnected"
    | Fault_engine.Diverged _ -> "diverged"
  in
  let first = Fault_engine.run ~cache srp sc in
  Alcotest.(check int) "miss on first solve" 0 (Fault_engine.cache_hits cache);
  Alcotest.(check int) "one entry" 1 (Fault_engine.cache_size cache);
  let second = Fault_engine.run ~cache srp sc in
  Alcotest.(check int) "hit on re-solve" 1 (Fault_engine.cache_hits cache);
  Alcotest.(check string) "same outcome" (classify first) (classify second);
  (* an equal-but-not-identical scenario still hits: the normalized
     downed set is the key *)
  ignore (Fault_engine.run ~cache srp (Scenario.make [ (2, 1); (1, 2) ]));
  Alcotest.(check int) "normalized key hits" 2 (Fault_engine.cache_hits cache);
  (* a cache hit consumes no budget *)
  let starved = Budget.create ~max_ticks:0 () in
  (match Fault_engine.run ~cache ~budget:starved srp sc with
  | _ -> ()
  | exception Budget.Exhausted _ ->
    Alcotest.fail "cache hit must not consume budget");
  Alcotest.(check int) "still hitting" 3 (Fault_engine.cache_hits cache)

let test_survey_cache_hits () =
  let srp = Rip.make (ring 4) ~dest:0 in
  let plan = Fault_engine.plan ~k:2 (ring 4) in
  let cache = Fault_engine.cache () in
  let cold = Fault_engine.survey ~cache srp plan in
  Alcotest.(check int) "cold survey: no hits" 0 cold.Fault_engine.n_cache_hits;
  let warm = Fault_engine.survey ~cache srp plan in
  Alcotest.(check int)
    "warm survey: every scenario answered from cache"
    (List.length plan.Fault_engine.scenarios)
    warm.Fault_engine.n_cache_hits;
  Alcotest.(check int) "verdicts unchanged" cold.Fault_engine.n_disconnected
    warm.Fault_engine.n_disconnected;
  let uncached = Fault_engine.survey srp plan in
  Alcotest.(check int) "no cache, no hits" 0 uncached.Fault_engine.n_cache_hits

(* --- divergence diagnosis --------------------------------------------- *)

type owned = { owner : int; opath : int list }

let bad_gadget_srp () =
  (* the classic BGP bad gadget (Griffin et al.): no stable solution *)
  let g =
    Graph.of_links ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (2, 3); (3, 1) ]
  in
  let clockwise = function 1 -> 2 | 2 -> 3 | 3 -> 1 | _ -> 0 in
  let rank o = function
    | [ v; 0 ] when v = clockwise o -> 0
    | [ 0 ] -> 1
    | _ -> 2
  in
  {
    Srp.graph = g;
    dest = 0;
    init = { owner = 0; opath = [] };
    compare =
      (fun a b ->
        if a.owner = b.owner then
          compare (rank a.owner a.opath) (rank b.owner b.opath)
        else 0);
    trans =
      (fun u v a ->
        match a with
        | None -> None
        | Some a ->
          let opath = v :: a.opath in
          if List.mem u opath then None else Some { owner = u; opath });
    attr_equal = ( = );
    pp_attr =
      (fun ppf a ->
        Format.fprintf ppf "%d:%s" a.owner
          (String.concat "." (List.map string_of_int a.opath)));
  }

let test_diagnosis_oscillation () =
  match Solver.solve ~max_steps:2000 (bad_gadget_srp ()) with
  | Ok _ -> Alcotest.fail "bad gadget must not stabilize"
  | Error (`Budget _) -> Alcotest.fail "max_steps must diagnose, not bail"
  | Error (`Diverged d) -> (
    Alcotest.(check bool) "spent the budget" true (d.Solver.diag_steps > 0);
    Alcotest.(check bool) "trace tail kept" true (d.Solver.diag_trace <> []);
    match d.Solver.diag_verdict with
    | Solver.Oscillation { period; participants } ->
      Alcotest.(check bool) "positive period" true (period > 0);
      Alcotest.(check bool) "participants are the gadget ring" true
        (participants <> []
        && List.for_all (fun u -> List.mem u [ 1; 2; 3 ]) participants)
    | _ -> Alcotest.fail "expected an oscillation verdict")

let test_diagnosis_likely_convergent () =
  (* a convergent SRP with a starved budget: the diagnosis sweep reaches a
     fixed point and says so instead of crying oscillation *)
  match Solver.solve ~max_steps:1 (Rip.make (ring 10) ~dest:0) with
  | Ok _ -> Alcotest.fail "one step cannot stabilize a 10-ring"
  | Error (`Budget _) -> Alcotest.fail "max_steps must diagnose, not bail"
  | Error (`Diverged d) -> (
    match d.Solver.diag_verdict with
    | Solver.Likely_convergent -> ()
    | v ->
      Alcotest.failf "expected Likely_convergent, got %a"
        (Solver.pp_verdict ~graph:(ring 10))
        v)

let test_solve_exn_diagnosis_message () =
  match Solver.solve_exn ~max_steps:2000 (bad_gadget_srp ()) with
  | _ -> Alcotest.fail "bad gadget must not stabilize"
  | exception Bonsai_error.Error (Bonsai_error.Divergence msg) ->
    let has needle = Astring_contains.contains msg needle in
    Alcotest.(check bool) "names the step count" true (has "diverged after");
    Alcotest.(check bool) "names the oscillation" true (has "oscillation");
    Alcotest.(check bool) "names a participant" true (has "n1" || has "1")

(* --- solution dedup uses attr_equal, not polymorphic compare ---------- *)

let closure_srp () =
  (* attributes carry a closure: polymorphic compare would raise
     Invalid_argument "compare: functional value" *)
  {
    Srp.graph = path 3;
    dest = 0;
    init = (0, Fun.id);
    compare = (fun (a, _) (b, _) -> Int.compare a b);
    trans =
      (fun _u _v a ->
        match a with
        | None -> None
        | Some (h, f) -> if h >= 15 then None else Some (h + 1, f));
    attr_equal = (fun (a, _) (b, _) -> Int.equal a b);
    pp_attr = (fun ppf (h, _) -> Format.pp_print_int ppf h);
  }

let test_dedup_with_closures () =
  let sols = Solver.solutions_sample ~tries:6 (closure_srp ()) in
  Alcotest.(check int) "one distinct solution" 1 (List.length sols);
  let sols = Solver.enumerate_solutions (closure_srp ()) in
  Alcotest.(check int) "enumerate agrees" 1 (List.length sols)

(* --- shrinking -------------------------------------------------------- *)

let test_shrink_exact () =
  let fails sc =
    List.mem (1, 2) sc.Scenario.down_links
    && List.mem (3, 4) sc.Scenario.down_links
  in
  let big = Scenario.make ~nodes:[ 9 ] [ (1, 2); (2, 3); (3, 4); (5, 6) ] in
  let m = Scenario.shrink fails big in
  Alcotest.(check bool) "shrinks to the two guilty links" true
    (Scenario.equal m (Scenario.make [ (1, 2); (3, 4) ]))

let test_shrink_requires_failing () =
  match Scenario.shrink (fun _ -> false) (Scenario.make [ (0, 1) ]) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let qcheck_shrink_minimal =
  (* the shrunk scenario of a monotone failure is exactly the guilty set,
     and dropping any single element of it makes the failure disappear *)
  let links = Scenario.all_links (ring 6) in
  let of_mask mask =
    List.filteri (fun i _ -> mask land (1 lsl i) <> 0) links
  in
  QCheck.Test.make ~name:"shrink is 1-minimal" ~count:200
    QCheck.(pair (int_range 1 63) (int_range 0 63))
    (fun (target_mask, extra_mask) ->
      let target = of_mask target_mask in
      let sc = Scenario.make (of_mask (target_mask lor extra_mask)) in
      let fails sc =
        List.for_all (fun l -> List.mem l sc.Scenario.down_links) target
      in
      let m = Scenario.shrink fails sc in
      fails m
      && Scenario.equal m (Scenario.make target)
      && List.for_all
           (fun e ->
             let smaller =
               Scenario.of_elements
                 (List.filter (fun e' -> e' <> e) (Scenario.elements m))
             in
             not (fails smaller))
           (Scenario.elements m))

(* --- abstraction soundness under failures ----------------------------- *)

let test_soundness_fattree () =
  (* the paper §9 caveat, mechanized: the fault-free fattree abstraction
     is broken by (any) single aggregation-core link failure *)
  let ft = Generators.fattree ~k:4 in
  let net = Synthesis.fattree_shortest_path ft in
  let ec = List.hd (Ecs.compute net) in
  let dest = Ecs.single_origin ec in
  let t = (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction in
  let concrete = Compile.bgp_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix in
  let abstract_ = Abstraction.bgp_srp t in
  let scenarios = Scenario.enumerate ~k:1 net.Device.graph in
  match Soundness.first_break t ~concrete ~abstract_ scenarios with
  | None -> Alcotest.fail "expected the fattree abstraction to break"
  | Some (sc, m) ->
    Alcotest.(check int) "minimal set is a single link" 1 (Scenario.size sc);
    Alcotest.(check bool) "concrete side still routes" true
      m.Soundness.concrete_reaches;
    Alcotest.(check bool) "abstract side is partitioned" false
      m.Soundness.abstract_reaches;
    Alcotest.(check bool) "both sides converged" true
      (m.Soundness.concrete_stable && m.Soundness.abstract_stable)

let test_check_all () =
  (* on the fattree's breaking scenario, check_all returns every
     disagreeing node (ascending), and check is its head *)
  let ft = Generators.fattree ~k:4 in
  let net = Synthesis.fattree_shortest_path ft in
  let ec = List.hd (Ecs.compute net) in
  let dest = Ecs.single_origin ec in
  let t = (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction in
  let concrete = Compile.bgp_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix in
  let abstract_ = Abstraction.bgp_srp t in
  let sc, _ =
    match
      Soundness.first_break t ~concrete ~abstract_
        (Scenario.enumerate ~k:1 net.Device.graph)
    with
    | Some b -> b
    | None -> Alcotest.fail "expected the fattree abstraction to break"
  in
  let all = Soundness.check_all t ~concrete ~abstract_ sc in
  Alcotest.(check bool) "several nodes disagree" true (List.length all > 1);
  let ids = List.map (fun m -> m.Soundness.mis_node) all in
  Alcotest.(check (list int)) "ascending, distinct"
    (List.sort_uniq Int.compare ids)
    ids;
  (match Soundness.check t ~concrete ~abstract_ sc with
  | Some m ->
    Alcotest.(check int) "check is the head of check_all"
      (List.hd ids) m.Soundness.mis_node
  | None -> Alcotest.fail "check must agree with check_all");
  (* an intact-topology scenario yields no mismatch *)
  Alcotest.(check int) "intact topology agrees" 0
    (List.length (Soundness.check_all t ~concrete ~abstract_ (Scenario.make [])))

let test_soundness_identity_ok () =
  (* sanity: comparing a network against itself (identity abstraction via
     a faithful SRP copy) never reports a break on a fault-tolerant
     topology when concrete and abstract agree by construction *)
  let srp = Rip.make (ring 5) ~dest:0 in
  let report =
    Fault_engine.survey srp (Fault_engine.plan ~k:1 (ring 5))
  in
  Alcotest.(check int) "ring tolerates any single failure" 5
    report.Fault_engine.n_stable

let () =
  Alcotest.run "faults"
    [
      ( "scenario",
        [
          Alcotest.test_case "all_links" `Quick test_all_links;
          Alcotest.test_case "enumerate counts" `Quick test_enumerate_counts;
          Alcotest.test_case "cut links" `Quick test_cut_links;
          Alcotest.test_case "sampling" `Quick test_sample;
          Alcotest.test_case "apply" `Quick test_apply;
        ] );
      ( "engine",
        [
          Alcotest.test_case "survives" `Quick test_survives;
          Alcotest.test_case "outcomes" `Quick test_engine_outcomes;
          Alcotest.test_case "plan" `Quick test_plan;
          Alcotest.test_case "survey" `Quick test_survey;
          Alcotest.test_case "cache" `Quick test_cache;
          Alcotest.test_case "survey cache hits" `Quick test_survey_cache_hits;
        ] );
      ( "diagnosis",
        [
          Alcotest.test_case "oscillation" `Quick test_diagnosis_oscillation;
          Alcotest.test_case "likely convergent" `Quick
            test_diagnosis_likely_convergent;
          Alcotest.test_case "solve_exn message" `Quick
            test_solve_exn_diagnosis_message;
          Alcotest.test_case "dedup with closures" `Quick
            test_dedup_with_closures;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "exact" `Quick test_shrink_exact;
          Alcotest.test_case "requires failing input" `Quick
            test_shrink_requires_failing;
          QCheck_alcotest.to_alcotest qcheck_shrink_minimal;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "fattree breaks under one failure" `Quick
            test_soundness_fattree;
          Alcotest.test_case "check_all collects every mismatch" `Quick
            test_check_all;
          Alcotest.test_case "ring survives" `Quick test_soundness_identity_ok;
        ] );
    ]

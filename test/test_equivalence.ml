(* End-to-end CP-equivalence (Theorems 4.2 and 4.5): compress random
   networks, solve both sides, and check label- and fwd-equivalence via the
   constructed refinement. Also: preservation of the §4.4 properties. *)

let uniform_signature _ _ = 0
let no_prefs _ = []

let bare_net graph =
  {
    Device.graph;
    routers =
      Array.init (Graph.n_nodes graph) (fun v ->
          Device.default_router (Graph.name graph v));
  }

let compress_bare ?(signature = uniform_signature) ?(prefs = no_prefs) graph
    ~dest =
  let net = bare_net graph in
  let partition, _ = Refine.find_partition net ~dest ~signature ~prefs in
  let universe = Policy_bdd.universe_of_network net in
  Abstraction.make net ~dest ~dest_prefix:(Prefix.of_string "10.0.0.0/24")
    ~universe ~partition
    ~copies:(fun m -> List.length (prefs m))

let compress_cfg net ec = (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction

(* --- plain protocols on random graphs -------------------------------- *)

let prop_rip_equivalence =
  QCheck.Test.make ~name:"RIP: compress + CP-equivalence" ~count:60
    QCheck.(pair (int_range 2 25) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Generators.random_connected ~n ~extra:(n / 2) ~seed in
      let t = compress_bare g ~dest:0 in
      let sol = Solver.solve_exn (Rip.make g ~dest:0) in
      let abs_srp = Rip.make t.Abstraction.abs_graph ~dest:t.Abstraction.abs_dest in
      let outcome, _ = Equivalence.check_plain ~abs_srp t sol in
      outcome.Equivalence.ok)

let prop_ospf_equivalence_uniform_costs =
  QCheck.Test.make ~name:"OSPF (uniform costs): CP-equivalence" ~count:60
    QCheck.(pair (int_range 2 25) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Generators.random_connected ~n ~extra:(n / 2) ~seed in
      let t = compress_bare g ~dest:0 in
      let sol = Solver.solve_exn (Ospf.make g ~dest:0) in
      let abs_srp =
        Ospf.make t.Abstraction.abs_graph ~dest:t.Abstraction.abs_dest
      in
      let outcome, _ = Equivalence.check_plain ~abs_srp t sol in
      outcome.Equivalence.ok)

(* OSPF with per-node cost classes: the signature must include the cost *)
let prop_ospf_equivalence_cost_classes =
  QCheck.Test.make ~name:"OSPF (cost classes): CP-equivalence" ~count:60
    QCheck.(pair (int_range 2 20) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Generators.random_connected ~n ~extra:(n / 2) ~seed in
      let cost u _v = 1 + (u mod 3) in
      let t =
        compress_bare ~signature:(fun u v -> cost u v) g ~dest:0
      in
      let sol = Solver.solve_exn (Ospf.make ~cost g ~dest:0) in
      (* the abstract cost function reads off a representative member *)
      let abs_cost a _ = 1 + (Abstraction.repr_of_abs t a mod 3) in
      let abs_srp =
        Ospf.make ~cost:abs_cost t.Abstraction.abs_graph
          ~dest:t.Abstraction.abs_dest
      in
      let outcome, _ = Equivalence.check_plain ~abs_srp t sol in
      outcome.Equivalence.ok)

(* OSPF with two areas: the inter-area bit must survive abstraction *)
let prop_ospf_equivalence_areas =
  QCheck.Test.make ~name:"OSPF (two areas): CP-equivalence" ~count:40
    QCheck.(pair (int_range 4 20) (int_range 0 1000))
    (fun (n, seed) ->
      let g = Generators.random_connected ~n ~extra:(n / 2) ~seed in
      let area v = if v < n / 2 then 0 else 1 in
      let t =
        compress_bare ~signature:(fun u v -> (2 * area u) + area v) g ~dest:0
      in
      let sol = Solver.solve_exn (Ospf.make ~area g ~dest:0) in
      let abs_area a = area (Abstraction.repr_of_abs t a) in
      let abs_srp =
        Ospf.make ~area:abs_area t.Abstraction.abs_graph
          ~dest:t.Abstraction.abs_dest
      in
      let outcome, abs_sol = Equivalence.check_plain ~abs_srp t sol in
      outcome.Equivalence.ok
      &&
      (* inter-area labels map to inter-area labels *)
      match abs_sol with
      | None -> false
      | Some abs_sol ->
        List.for_all
          (fun u ->
            match
              (Solution.label sol u, Solution.label abs_sol outcome.Equivalence.fr.(u))
            with
            | Some (a : Ospf.attr), Some b -> a.Ospf.inter_area = b.Ospf.inter_area
            | None, None -> true
            | _ -> false)
          (List.init n Fun.id))

(* the finished abstraction satisfies the Figure 4 conditions *)
let prop_check_conditions_hold =
  QCheck.Test.make ~name:"effective-abstraction conditions hold" ~count:60
    QCheck.(pair (int_range 2 16) (int_range 0 2000))
    (fun (n, seed) ->
      let net = Synthesis.random_network ~n ~seed in
      let ec = List.hd (Ecs.compute net) in
      let r = Bonsai_api.compress_ec_exn net ec in
      let _, signature =
        Compile.edge_signatures
          ~universe:r.Bonsai_api.abstraction.Abstraction.universe net
          ~dest:ec.Ecs.ec_prefix
      in
      Check.check r.Bonsai_api.abstraction ~signature = [])

(* --- configured BGP networks ------------------------------------------ *)

let prop_bgp_equivalence_random_configs =
  QCheck.Test.make ~name:"BGP random configs: CP-equivalence (Thm 4.5)"
    ~count:80
    QCheck.(triple (int_range 2 16) (int_range 0 2000) (int_range 0 3))
    (fun (n, seed, solver_seed) ->
      let net = Synthesis.random_network ~n ~seed in
      let ec = List.hd (Ecs.compute net) in
      let t = compress_cfg net ec in
      let srp = Compile.bgp_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix in
      match Solver.solve ~seed:solver_seed srp with
      | Error _ -> QCheck.assume_fail ()
      | Ok (sol, _) ->
        let outcome, _ = Equivalence.check_bgp t sol in
        outcome.Equivalence.ok)

let prop_bgp_equivalence_fattree =
  QCheck.Test.make ~name:"BGP fattree policies: CP-equivalence" ~count:8
    QCheck.(pair (oneofl [ 4; 6 ]) QCheck.bool)
    (fun (k, prefer_bottom) ->
      let ft = Generators.fattree ~k in
      let net =
        if prefer_bottom then Synthesis.fattree_prefer_bottom ft
        else Synthesis.fattree_shortest_path ft
      in
      let ec = List.hd (Ecs.compute net) in
      let t = compress_cfg net ec in
      let dest = Ecs.single_origin ec in
      let srp = Compile.bgp_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix in
      let sol = Solver.solve_exn srp in
      let outcome, _ = Equivalence.check_bgp t sol in
      outcome.Equivalence.ok)

(* --- property preservation (§4.4) -------------------------------------- *)

let prop_reachability_preserved =
  QCheck.Test.make ~name:"reachability preserved through f" ~count:60
    QCheck.(pair (int_range 2 16) (int_range 0 2000))
    (fun (n, seed) ->
      let net = Synthesis.random_network ~n ~seed in
      let ec = List.hd (Ecs.compute net) in
      let t = compress_cfg net ec in
      let srp = Compile.bgp_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix in
      match Solver.solve srp with
      | Error _ -> QCheck.assume_fail ()
      | Ok (sol, _) ->
        let outcome, abs_sol = Equivalence.check_bgp t sol in
        (match (outcome.Equivalence.ok, abs_sol) with
        | true, Some abs_sol ->
          (* u reaches d iff fr(u) reaches the abstract dest *)
          List.for_all
            (fun u ->
              Properties.reachable sol u
              = Properties.reachable abs_sol outcome.Equivalence.fr.(u))
            (List.init n Fun.id)
        | _ -> false))

let prop_path_lengths_preserved =
  QCheck.Test.make ~name:"path lengths preserved through f" ~count:40
    QCheck.(pair (int_range 2 14) (int_range 0 2000))
    (fun (n, seed) ->
      let net = Synthesis.random_network ~n ~seed in
      let ec = List.hd (Ecs.compute net) in
      let t = compress_cfg net ec in
      let srp = Compile.bgp_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix in
      match Solver.solve srp with
      | Error _ -> QCheck.assume_fail ()
      | Ok (sol, _) ->
        let outcome, abs_sol = Equivalence.check_bgp t sol in
        (match (outcome.Equivalence.ok, abs_sol) with
        | true, Some abs_sol ->
          List.for_all
            (fun u ->
              Properties.path_lengths sol ~src:u
              |> List.sort_uniq compare
              = (Properties.path_lengths abs_sol ~src:outcome.Equivalence.fr.(u)
                 |> List.sort_uniq compare))
            (List.init n Fun.id)
        | _ -> false))

let prop_loops_preserved =
  QCheck.Test.make ~name:"loop-freedom preserved" ~count:40
    QCheck.(pair (int_range 2 16) (int_range 0 2000))
    (fun (n, seed) ->
      let net = Synthesis.random_network ~n ~seed in
      let ec = List.hd (Ecs.compute net) in
      let t = compress_cfg net ec in
      let srp = Compile.bgp_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix in
      match Solver.solve srp with
      | Error _ -> QCheck.assume_fail ()
      | Ok (sol, _) ->
        let outcome, abs_sol = Equivalence.check_bgp t sol in
        (match (outcome.Equivalence.ok, abs_sol) with
        | true, Some abs_sol ->
          Properties.has_routing_loop sol = Properties.has_routing_loop abs_sol
        | _ -> false))

(* ACLs drop traffic: black holes must appear on both sides alike *)
let prop_blackholes_preserved_under_acls =
  QCheck.Test.make ~name:"black holes (ACL drops) preserved" ~count:40
    QCheck.(pair (int_range 3 14) (int_range 0 2000))
    (fun (n, seed) ->
      let base = Synthesis.random_network ~n ~seed in
      (* deny the destination on all interfaces of one non-dest router *)
      let victim = 1 + (seed mod (n - 1)) in
      let block : Acl.t =
        [ { Acl.permit = false; prefix = Prefix.of_string "10.0.0.0/8" } ]
      in
      let routers = Array.copy base.Device.routers in
      routers.(victim) <-
        {
          (routers.(victim)) with
          Device.acl_out =
            Array.to_list (Graph.succ base.Device.graph victim)
            |> List.map (fun u -> (u, block));
        };
      let net = { base with Device.routers = routers } in
      let ec = List.hd (Ecs.compute net) in
      let t = compress_cfg net ec in
      match
        Solver.solve (Compile.bgp_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix)
      with
      | Error _ -> QCheck.assume_fail ()
      | Ok (sol, _) ->
        let outcome, abs_sol = Equivalence.check_bgp t sol in
        (match (outcome.Equivalence.ok, abs_sol) with
        | true, Some abs_sol ->
          (* the victim lost its route on both sides *)
          Solution.label sol victim = None
          && Solution.label abs_sol outcome.Equivalence.fr.(victim) = None
          && List.for_all
               (fun u ->
                 Properties.black_hole sol u
                 = Properties.black_hole abs_sol outcome.Equivalence.fr.(u))
               (List.init n Fun.id)
        | _ -> false))

(* convergence transfers: when the concrete network has a stable solution,
   solving the abstract network finds one too (paper §4.4, Convergence) *)
let prop_abstract_converges =
  QCheck.Test.make ~name:"abstract network converges when concrete does"
    ~count:60
    QCheck.(pair (int_range 2 16) (int_range 0 2000))
    (fun (n, seed) ->
      let net = Synthesis.random_network ~n ~seed in
      let ec = List.hd (Ecs.compute net) in
      let t = compress_cfg net ec in
      match
        Solver.solve (Compile.bgp_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix)
      with
      | Error _ -> QCheck.assume_fail ()
      | Ok _ -> (
        match Solver.solve (Abstraction.bgp_srp t) with
        | Ok (abs_sol, _) -> Solution.is_stable abs_sol
        | Error _ -> false))

(* --- static routing (Theorem 4.3, Figure 6) ---------------------------- *)

let test_static_figure6_fwd_equivalence () =
  (* a(0) - b1(1) - d(3), a(0) - b2(2) - d(3); static routes: a -> b2,
     b2 -> d (Figure 6). b1 and b2 differ (b2 has a static route), so
     they must not merge; fwd-equivalence holds on the abstraction. *)
  let g = Graph.of_links ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let routes = [ (0, 2); (2, 3) ] in
  let has_static u v = List.mem (u, v) routes in
  let net = bare_net g in
  let partition, _ =
    Refine.find_partition net ~dest:3 ~live_self:has_static
      ~signature:(fun u v -> if has_static u v then 1 else 0)
      ~prefs:(fun _ -> [])
  in
  let t =
    Abstraction.make net ~dest:3 ~dest_prefix:(Prefix.of_string "10.0.0.0/24")
      ~universe:(Policy_bdd.universe_of_network net) ~partition
      ~copies:(fun _ -> 1)
  in
  Alcotest.(check bool) "b1/b2 split" true
    (t.Abstraction.group_of.(1) <> t.Abstraction.group_of.(2));
  let srp = Static_route.make g ~dest:3 ~routes in
  let sol = Solver.solve_exn srp in
  (* abstract static routes through representatives *)
  let abs_routes =
    List.filter_map
      (fun (u, v) ->
        let au = Abstraction.f t u and av = Abstraction.f t v in
        if Graph.has_edge t.Abstraction.abs_graph au av then Some (au, av)
        else None)
      routes
  in
  let abs_srp =
    Static_route.make t.Abstraction.abs_graph ~dest:t.Abstraction.abs_dest
      ~routes:abs_routes
  in
  let outcome, _ = Equivalence.check_plain ~abs_srp t sol in
  Alcotest.(check bool)
    (String.concat "; " outcome.Equivalence.errors)
    true outcome.Equivalence.ok

(* --- multi-protocol ------------------------------------------------------ *)

let prop_multi_equivalence_random =
  QCheck.Test.make ~name:"multi-protocol random configs: CP-equivalence"
    ~count:60
    QCheck.(pair (int_range 2 14) (int_range 0 2000))
    (fun (n, seed) ->
      let net = Synthesis.random_multi_network ~n ~seed in
      let ec = List.hd (Ecs.compute net) in
      let t = compress_cfg net ec in
      let srp = Compile.multi_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix in
      match Solver.solve srp with
      | Error _ -> QCheck.assume_fail ()
      | Ok (sol, _) ->
        let outcome, _ = Equivalence.check_multi t sol in
        (* random static routes can create forwarding cycles, which the
           inductive construction cannot order; skip those instances *)
        if
          List.exists
            (fun e -> e = "concrete forwarding relation is cyclic")
            outcome.Equivalence.errors
        then QCheck.assume_fail ()
        else outcome.Equivalence.ok)


let test_multi_wan_sample_equivalence () =
  (* a small WAN-style network: backbone pair + one PoP with OSPF and
     redistribution; checks the multi-protocol abstraction end to end *)
  let wan = Synthesis.wan () in
  let net = wan.Synthesis.net in
  let ecs = Ecs.compute net in
  (* sample a handful of classes to keep the test quick *)
  let sample = List.filteri (fun i _ -> i mod 199 = 0) ecs in
  Alcotest.(check bool) "have samples" true (List.length sample >= 3);
  List.iter
    (fun ec ->
      match ec.Ecs.ec_origins with
      | [ dest ] ->
        let t = compress_cfg net ec in
        let srp = Compile.multi_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix in
        (match Solver.solve srp with
        | Error _ -> Alcotest.fail "wan sample diverged"
        | Ok (sol, _) ->
          let outcome, _ = Equivalence.check_multi t sol in
          Alcotest.(check bool)
            (Format.asprintf "%a: %s" Ecs.pp ec
               (String.concat "; " outcome.Equivalence.errors))
            true outcome.Equivalence.ok)
      | _ -> ())
    sample

let test_datacenter_sample_equivalence () =
  let dc = Synthesis.datacenter () in
  let net = dc.Synthesis.net in
  let ecs = Ecs.compute net in
  let sample = List.filteri (fun i _ -> i mod 311 = 0) ecs in
  List.iter
    (fun ec ->
      match ec.Ecs.ec_origins with
      | [ dest ] ->
        let t = compress_cfg net ec in
        let srp = Compile.multi_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix in
        (match Solver.solve srp with
        | Error _ -> Alcotest.fail "dc sample diverged"
        | Ok (sol, _) ->
          let outcome, _ = Equivalence.check_multi t sol in
          Alcotest.(check bool)
            (Format.asprintf "%a: %s" Ecs.pp ec
               (String.concat "; " outcome.Equivalence.errors))
            true outcome.Equivalence.ok)
      | _ -> ())
    sample

let () =
  Alcotest.run "equivalence"
    [
      ( "static",
        [
          Alcotest.test_case "figure 6" `Quick test_static_figure6_fwd_equivalence;
        ] );
      ( "real-networks",
        [
          Alcotest.test_case "wan samples" `Slow test_multi_wan_sample_equivalence;
          Alcotest.test_case "datacenter samples" `Slow
            test_datacenter_sample_equivalence;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_rip_equivalence;
            prop_ospf_equivalence_uniform_costs;
            prop_ospf_equivalence_cost_classes;
            prop_ospf_equivalence_areas;
            prop_check_conditions_hold;
            prop_bgp_equivalence_random_configs;
            prop_multi_equivalence_random;
            prop_bgp_equivalence_fattree;
            prop_reachability_preserved;
            prop_path_lengths_preserved;
            prop_loops_preserved;
            prop_blackholes_preserved_under_acls;
            prop_abstract_converges;
          ] );
    ]

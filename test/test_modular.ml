(* Tests for modular compression (lib/modular): the Budget.split
   isolation primitive, partition determinism, the headline soundness
   property — composing per-module abstractions equals monolithic
   compression — and the robustness contract: an injected fault degrades
   exactly one module, leaving every other module's report identical to
   the all-healthy run (and the composition still exact, since identity
   partitions only refine the seed).

   QCheck iteration count scales with FUZZ_COUNT as in test_incr. *)

let fuzz_count =
  match Option.bind (Sys.getenv_opt "FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 25

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Bonsai_error.pp e

(* --- Budget.split ----------------------------------------------------- *)

let test_split_quota () =
  let b = Budget.create ~max_ticks:100 () in
  let c = Budget.split b ~frac:0.1 in
  for _ = 1 to 10 do
    Budget.tick c ~phase:"test"
  done;
  (* the child's quota is 10% of the parent's remaining 100 ticks *)
  (match Budget.tick c ~phase:"test" with
  | () -> Alcotest.fail "child slice did not exhaust at its quota"
  | exception Budget.Exhausted _ -> ());
  (* ...and its work charged the parent, but did not exhaust it *)
  Alcotest.(check bool) "parent charged" true (Budget.ticks b >= 10);
  Budget.tick b ~phase:"test";
  (* a sibling slice carved after the fault is alive and independent *)
  let c2 = Budget.split b ~frac:0.5 in
  Budget.tick c2 ~phase:"test"

let test_split_infinite () =
  Alcotest.(check bool) "split infinite = infinite" true
    (Budget.is_infinite (Budget.split Budget.infinite ~frac:0.25))

let test_split_cancel_propagates () =
  let b = Budget.create () in
  let c = Budget.split b ~frac:0.5 in
  Budget.cancel b;
  Alcotest.(check bool) "child sees parent cancel" true (Budget.cancelled c)

let test_split_bad_frac () =
  let b = Budget.create () in
  List.iter
    (fun frac ->
      match Budget.split b ~frac with
      | _ -> Alcotest.failf "split accepted frac %g" frac
      | exception Invalid_argument _ -> ())
    [ 0.0; -0.5; 1.5 ]

(* --- partition -------------------------------------------------------- *)

let fattree4 () = Synthesis.fattree_shortest_path (Generators.fattree ~k:4)
let multiwan ~regions ~region_size =
  (Synthesis.multiwan ~regions ~region_size).Synthesis.net

let covers_exactly net parts =
  let n = Graph.n_nodes net.Device.graph in
  let seen = Array.make n 0 in
  List.iter (fun (_, ms) -> List.iter (fun i -> seen.(i) <- seen.(i) + 1) ms)
    parts;
  Array.for_all (fun c -> c = 1) seen

let ok_exn' = function
  | Ok v -> v
  | Error m -> Alcotest.failf "partition: %s" m

let test_partition_auto_deterministic () =
  let net = fattree4 () in
  let p1 = ok_exn' (Modular.partition ~count:3 ~mode:Modular.Auto net)
  and p2 = ok_exn' (Modular.partition ~count:3 ~mode:Modular.Auto net) in
  Alcotest.(check bool) "deterministic" true (p1 = p2);
  (* BFS carving can shed small leftover fragments beyond the requested
     count, but never fewer regions than asked for *)
  Alcotest.(check bool) "at least the requested regions" true
    (List.length p1 >= 3);
  Alcotest.(check bool) "covers every node once" true (covers_exactly net p1);
  Alcotest.(check bool) "name-sorted" true
    (List.sort compare (List.map fst p1) = List.map fst p1)

let test_partition_annot () =
  let net = multiwan ~regions:3 ~region_size:4 in
  let p = ok_exn' (Modular.partition ~mode:Modular.Annot net) in
  Alcotest.(check (list string)) "annotated modules"
    [ "core"; "region0"; "region1"; "region2" ]
    (List.map fst p);
  Alcotest.(check bool) "covers every node once" true (covers_exactly net p)

let test_partition_annot_missing () =
  match Modular.partition ~mode:Modular.Annot (Synthesis.ring_bgp ~n:4) with
  | Ok _ -> Alcotest.fail "Annot accepted an unannotated network"
  | Error m ->
    Alcotest.(check bool) "diagnostic names the gap" true
      (Astring_contains.contains m "module annotation")

(* --- compose ≡ monolithic -------------------------------------------- *)

let canon_groups (a : Abstraction.t) =
  let m = Hashtbl.create 16 in
  Array.map
    (fun g ->
      match Hashtbl.find_opt m g with
      | Some i -> i
      | None ->
        let i = Hashtbl.length m in
        Hashtbl.add m g i;
        i)
    a.Abstraction.group_of

let results_equal (got : Bonsai_api.ec_result list)
    (want : Bonsai_api.ec_result list) =
  List.length got = List.length want
  && List.for_all2
       (fun (g : Bonsai_api.ec_result) (w : Bonsai_api.ec_result) ->
         Prefix.equal g.ec.Ecs.ec_prefix w.ec.Ecs.ec_prefix
         && canon_groups g.abstraction = canon_groups w.abstraction)
       got want

let check_compose_exact ?(what = "compose") st =
  let net = Modular.network st in
  let scratch = ok_exn "scratch" (Bonsai_api.compress net) in
  let composed = ok_exn what (Modular.compose st) in
  Alcotest.(check bool)
    (what ^ " ≡ monolithic")
    true
    (results_equal composed.Bonsai_api.results scratch.Bonsai_api.results)

let test_compose_ring () =
  let st =
    ok_exn "run" (Modular.run ~mode:Modular.Auto ~count:3 (Synthesis.ring_bgp ~n:9))
  in
  check_compose_exact st

let test_compose_fattree () =
  let st = ok_exn "run" (Modular.run ~mode:Modular.Auto ~count:4 (fattree4 ())) in
  check_compose_exact st

let test_compose_multiwan_annot () =
  let st =
    ok_exn "run"
      (Modular.run ~mode:Modular.Annot (multiwan ~regions:3 ~region_size:4))
  in
  let rep = Modular.report st in
  Alcotest.(check int) "no faults" 0
    (List.length
       (List.filter
          (fun m -> m.Modular.mr_health <> Modular.Healthy)
          rep.Modular.rp_modules));
  check_compose_exact st

let test_certify_clean () =
  let st =
    ok_exn "run"
      (Modular.run ~mode:Modular.Annot ~certify:true
         (multiwan ~regions:2 ~region_size:3))
  in
  Alcotest.(check bool) "no module refuted" false
    (List.exists
       (fun m -> m.Modular.mr_health = Modular.Refuted)
       (Modular.report st).Modular.rp_modules)

(* --- fault isolation -------------------------------------------------- *)

let mr_eq (a : Modular.module_report) (b : Modular.module_report) =
  (* everything except wall-clock *)
  a.Modular.mr_name = b.Modular.mr_name
  && a.Modular.mr_routers = b.Modular.mr_routers
  && a.Modular.mr_ecs = b.Modular.mr_ecs
  && a.Modular.mr_concrete = b.Modular.mr_concrete
  && a.Modular.mr_abstract = b.Modular.mr_abstract
  && a.Modular.mr_health = b.Modular.mr_health
  && a.Modular.mr_detail = b.Modular.mr_detail

let check_fault_isolated ~victim net =
  let healthy = ok_exn "run" (Modular.run ~mode:Modular.Annot net) in
  let faulted =
    ok_exn "run faulted"
      (Modular.run ~mode:Modular.Annot ~inject_fault:[ victim ] net)
  in
  let h_rep = Modular.report healthy and f_rep = Modular.report faulted in
  List.iter2
    (fun (h : Modular.module_report) (f : Modular.module_report) ->
      if h.Modular.mr_name = victim then begin
        Alcotest.(check string) "victim degraded" "degraded"
          (Modular.health_name f.Modular.mr_health);
        Alcotest.(check bool) "identity abstraction" true
          (f.Modular.mr_abstract = f.Modular.mr_concrete);
        Alcotest.(check bool) "detail names the budget" true
          (match f.Modular.mr_detail with
          | Some d -> Astring_contains.contains d "budget exhausted"
          | None -> false)
      end
      else
        Alcotest.(check bool)
          (Printf.sprintf "%s untouched by %s's fault" h.Modular.mr_name victim)
          true (mr_eq h f))
    h_rep.Modular.rp_modules f_rep.Modular.rp_modules;
  (* the degraded module enters composition as the identity partition —
     a refinement of the seed — so the composed result is still exact *)
  check_compose_exact ~what:"compose (faulted)" faulted

let test_fault_isolated () =
  check_fault_isolated ~victim:"region1" (multiwan ~regions:3 ~region_size:4)

(* --- streaming -------------------------------------------------------- *)

let test_stream () =
  let rep =
    ok_exn "run_stream"
      (Modular.run_stream ~count:3
         (Synthesis.multiwan_stream ~regions:3 ~region_size:4))
  in
  Alcotest.(check int) "3 modules" 3 (List.length rep.Modular.rp_modules);
  Alcotest.(check bool) "all healthy" false (Modular.any_fault rep);
  (* region_size routers + 1 env stub per self-contained module subnet *)
  Alcotest.(check int) "routers" 15 rep.Modular.rp_routers;
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Modular.mr_name ^ " compressed")
        true
        (m.Modular.mr_abstract < m.Modular.mr_concrete))
    rep.Modular.rp_modules

(* --- warm-state operations ------------------------------------------- *)

let test_quarantine_rebuild () =
  let st =
    ok_exn "run"
      (Modular.run ~mode:Modular.Annot (multiwan ~regions:3 ~region_size:4))
  in
  Alcotest.(check bool) "warm before" true
    (Option.is_some (Modular.module_summary st "region1"));
  Alcotest.(check bool) "quarantine" true (Modular.quarantine st "region1");
  Alcotest.(check bool) "cold after" true
    (Option.is_none (Modular.module_summary st "region1"));
  Alcotest.(check bool) "second quarantine is a no-op" false
    (Modular.quarantine st "region1");
  (match Modular.rebuild_module st "region1" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rebuild: %a" Bonsai_error.pp e);
  Alcotest.(check bool) "warm again" true
    (Option.is_some (Modular.module_summary st "region1"));
  check_compose_exact ~what:"compose (rebuilt)" st

let test_update_targeted () =
  let st =
    ok_exn "run"
      (Modular.run ~mode:Modular.Annot (multiwan ~regions:3 ~region_size:4))
  in
  (* r0n2 is an access router: its only neighbors are region0's two
     gateways, and a static-table delta touches only the one router, so
     the edit is interior to one healthy module. (An Acl_set would not
     qualify: it touches both endpoints, and in multiwan every link has
     a boundary gateway or core endpoint.) *)
  let d = Delta.Static_set { node = "r0n2"; routes = [] } in
  (match Modular.update st [ d ] with
  | Ok (Some _) -> ()
  | Ok None -> Alcotest.fail "interior delta fell back to a full re-run"
  | Error e -> Alcotest.failf "update: %a" Bonsai_error.pp e);
  check_compose_exact ~what:"compose (updated)" st;
  (* a structural delta must fall back to a full re-run *)
  match Modular.update st [ Delta.Node_remove "r2n3" ] with
  | Ok None -> check_compose_exact ~what:"compose (rebuilt after removal)" st
  | Ok (Some _) -> Alcotest.fail "structural delta took the targeted path"
  | Error e -> Alcotest.failf "update (structural): %a" Bonsai_error.pp e

(* --- fuzz ------------------------------------------------------------- *)

let prop_compose =
  QCheck.Test.make ~count:fuzz_count
    ~name:"modular compose ≡ monolithic on random small nets"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let net, mode, count =
        match seed mod 3 with
        | 0 -> (Synthesis.ring_bgp ~n:(5 + (seed mod 5)), Modular.Auto,
                Some (2 + (seed mod 3)))
        | 1 -> (fattree4 (), Modular.Auto, Some (2 + (seed mod 3)))
        | _ ->
          ( multiwan ~regions:(2 + (seed mod 2)) ~region_size:(3 + (seed mod 2)),
            Modular.Annot, None )
      in
      match Modular.run ~mode ?count net with
      | Error e ->
        QCheck.Test.fail_reportf "run failed: %s"
          (Format.asprintf "%a" Bonsai_error.pp e)
      | Ok st -> (
        let scratch =
          match Bonsai_api.compress net with
          | Ok s -> s
          | Error e ->
            QCheck.Test.fail_reportf "scratch failed: %s"
              (Format.asprintf "%a" Bonsai_error.pp e)
        in
        match Modular.compose st with
        | Ok c -> results_equal c.Bonsai_api.results scratch.Bonsai_api.results
        | Error e ->
          QCheck.Test.fail_reportf "compose failed: %s"
            (Format.asprintf "%a" Bonsai_error.pp e)))

let prop_fault_isolation =
  QCheck.Test.make ~count:fuzz_count
    ~name:"injected fault degrades only the victim module"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let regions = 2 + (seed mod 2) in
      let net = multiwan ~regions ~region_size:(3 + (seed mod 2)) in
      let victim =
        match seed mod (regions + 1) with
        | v when v < regions -> Printf.sprintf "region%d" v
        | _ -> "core"
      in
      check_fault_isolated ~victim net;
      true)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "modular"
    [
      ( "budget-split",
        [
          Alcotest.test_case "child quota" `Quick test_split_quota;
          Alcotest.test_case "infinite" `Quick test_split_infinite;
          Alcotest.test_case "cancel propagates" `Quick
            test_split_cancel_propagates;
          Alcotest.test_case "bad frac" `Quick test_split_bad_frac;
        ] );
      ( "partition",
        [
          Alcotest.test_case "auto deterministic" `Quick
            test_partition_auto_deterministic;
          Alcotest.test_case "annotations" `Quick test_partition_annot;
          Alcotest.test_case "missing annotation" `Quick
            test_partition_annot_missing;
        ] );
      ( "compose",
        [
          Alcotest.test_case "ring" `Quick test_compose_ring;
          Alcotest.test_case "fattree" `Quick test_compose_fattree;
          Alcotest.test_case "multiwan (annot)" `Quick
            test_compose_multiwan_annot;
          Alcotest.test_case "certify clean" `Quick test_certify_clean;
        ] );
      ( "fault-isolation",
        [ Alcotest.test_case "injected fault" `Quick test_fault_isolated ] );
      ("stream", [ Alcotest.test_case "multiwan-stream" `Quick test_stream ]);
      ( "warm-state",
        [
          Alcotest.test_case "quarantine/rebuild" `Quick
            test_quarantine_rebuild;
          Alcotest.test_case "targeted update" `Quick test_update_targeted;
        ] );
      qsuite "fuzz" [ prop_compose; prop_fault_isolation ];
    ]

(* Tests for lib/certify: the certificate round trip, acceptance of
   engine-produced certificates (the checker must never refute a correct
   answer), and refutation of a table of deliberate mutations — merged
   classes, a moved node, a swapped representative, an altered labeling,
   a phantom abstract edge. The QCheck acceptance property runs under
   the @fuzz alias and scales with FUZZ_COUNT. *)

let fuzz_count =
  match Option.bind (Sys.getenv_opt "FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 25

let compress_exn net =
  match Bonsai_api.compress net with
  | Ok s -> s
  | Error e -> Alcotest.failf "compress failed: %s" (Bonsai_error.to_string e)

let cert_of net ~name =
  Certify.of_summary ~network:name net (compress_exn net)

let is_certified = function Certify.Certified _ -> true | _ -> false

let refuted_conditions = function
  | Certify.Refuted fs ->
    List.sort_uniq String.compare
      (List.map (fun f -> f.Certify.f_condition) fs)
  | _ -> []

let check_certified ?(audit = Certify.Full) net t what =
  match Certify.check ~audit net t with
  | Certify.Certified { obligations; _ } ->
    Alcotest.(check bool)
      (what ^ ": checked at least one obligation")
      true (obligations > 0)
  | v ->
    Alcotest.failf "%s: expected certified, got %s" what
      (Format.asprintf "%a" Certify.pp_verdict v)

(* --- acceptance ------------------------------------------------------- *)

let test_accept_ring () =
  let net = Synthesis.ring_bgp ~n:6 in
  let t = cert_of net ~name:"ring:6" in
  check_certified net t "ring:6 full";
  check_certified ~audit:Certify.Sample net t "ring:6 sample"

let test_accept_fattree () =
  let net = Synthesis.fattree_shortest_path (Generators.fattree ~k:4) in
  let t = cert_of net ~name:"fattree:4" in
  check_certified net t "fattree:4 full";
  check_certified ~audit:Certify.Sample net t "fattree:4 sample"

let test_accept_split_groups () =
  (* prefer-bottom policies give multi-preference groups (copies > 1),
     exercising the ∀∀ neighborhood condition *)
  let net = Synthesis.fattree_prefer_bottom (Generators.fattree ~k:4) in
  let t = cert_of net ~name:"fattree-prefer:4" in
  check_certified net t "fattree-prefer:4 full"

let test_accept_single_result () =
  let net = Synthesis.ring_bgp ~n:6 in
  let s = compress_exn net in
  let r = List.hd s.Bonsai_api.results in
  match Certify.check_result ~audit:Certify.Full net r with
  | Certify.Certified _ -> ()
  | v ->
    Alcotest.failf "check_result: expected certified, got %s"
      (Format.asprintf "%a" Certify.pp_verdict v)

(* --- round trip ------------------------------------------------------- *)

let test_json_roundtrip () =
  let net = Synthesis.ring_bgp ~n:6 in
  let t = cert_of net ~name:"ring:6" in
  let j = Certify.to_json t in
  (match Certify.of_json j with
  | Ok t' ->
    Alcotest.(check bool) "json round trip is exact" true
      (Json.equal j (Certify.to_json t'));
    check_certified net t' "reparsed certificate"
  | Error e -> Alcotest.failf "of_json failed: %s" e);
  (* and the serialized form survives the wire format *)
  match Json.parse (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "string round trip" true (Json.equal j j')
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_of_json_rejects_garbage () =
  (match Certify.of_json (Json.Obj [ ("format", Json.String "nope") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unknown format");
  match Certify.of_json (Json.String "not a certificate") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a non-object"

(* --- mutation table --------------------------------------------------- *)

(* Mutations work on the first class with at least 3 groups. *)
let first_cert t =
  match t.Certify.certs with
  | c :: _ -> c
  | [] -> Alcotest.fail "no classes in certificate"

let with_first_cert t f =
  match t.Certify.certs with
  | c :: rest -> { t with Certify.certs = f c :: rest }
  | [] -> Alcotest.fail "no classes in certificate"

let expect_refuted net t what =
  let v = Certify.check ~audit:Certify.Full net t in
  if is_certified v then Alcotest.failf "%s: mutated certificate accepted" what;
  (match v with
  | Certify.Audit_incomplete _ ->
    Alcotest.failf "%s: expected refutation, audit gave up" what
  | _ -> ());
  refuted_conditions v

let ring_cert () =
  let net = Synthesis.ring_bgp ~n:6 in
  (net, cert_of net ~name:"ring:6")

let test_reject_merged_classes () =
  let net, t = ring_cert () in
  let c = first_cert t in
  (match c.Certify.c_groups with
  | g0 :: g1 :: g2 :: rest ->
    let merged =
      {
        c with
        Certify.c_groups = g0 :: (g1 @ g2) :: rest;
        c_reprs =
          (match c.Certify.c_reprs with
          | r0 :: r1 :: _ :: rs -> r0 :: r1 :: rs
          | rs -> rs);
        c_prefs =
          (match c.Certify.c_prefs with
          | p0 :: p1 :: _ :: ps -> p0 :: p1 :: ps
          | ps -> ps);
        c_copies =
          (match c.Certify.c_copies with
          | k0 :: k1 :: _ :: ks -> k0 :: k1 :: ks
          | ks -> ks);
      }
    in
    let conds =
      expect_refuted net
        (with_first_cert t (fun _ -> merged))
        "merged classes"
    in
    Alcotest.(check bool) "some condition failed" true (conds <> [])
  | _ -> Alcotest.fail "ring:6 cert has too few groups")

let test_reject_moved_node () =
  (* the shape the serve self-audit must catch: a well-formed partition
     that puts one router in the wrong role *)
  let net, t = ring_cert () in
  let c = first_cert t in
  let moved =
    match c.Certify.c_groups with
    | g0 :: (m :: ms) :: g2 :: rest when ms <> [] ->
      { c with Certify.c_groups = g0 :: ms :: (g2 @ [ m ]) :: rest }
    | g0 :: g1 :: (m :: ms) :: rest when ms <> [] ->
      { c with Certify.c_groups = g0 :: (g1 @ [ m ]) :: ms :: rest }
    | _ -> Alcotest.fail "no multi-member group to move from"
  in
  ignore
    (expect_refuted net (with_first_cert t (fun _ -> moved)) "moved node")

let test_reject_swapped_representative () =
  let net, t = ring_cert () in
  let c = first_cert t in
  (* find a group with >= 2 members and claim its second member *)
  let gid, second =
    let rec go i = function
      | (_ :: m2 :: _) :: _ -> (i, m2)
      | _ :: rest -> go (i + 1) rest
      | [] -> Alcotest.fail "no multi-member group"
    in
    go 0 c.Certify.c_groups
  in
  let swapped =
    {
      c with
      Certify.c_reprs =
        List.mapi
          (fun i r -> if i = gid then second else r)
          c.Certify.c_reprs;
    }
  in
  let conds =
    expect_refuted net
      (with_first_cert t (fun _ -> swapped))
      "swapped representative"
  in
  Alcotest.(check bool) "representative condition named" true
    (List.mem "representative" conds)

let test_reject_altered_labeling () =
  let net, t = ring_cert () in
  let c = first_cert t in
  let altered =
    match c.Certify.c_labels with
    | Some (Json.List entries) ->
      let bumped = ref false in
      let entries =
        List.map
          (fun e ->
            match (Json.member "lp" e, !bumped) with
            | Some (Json.Int lp), false ->
              bumped := true;
              (match e with
              | Json.Obj fields ->
                Json.Obj
                  (List.map
                     (fun (k, v) ->
                       if String.equal k "lp" then (k, Json.Int (lp + 7))
                       else (k, v))
                     fields)
              | _ -> e)
            | _ -> e)
          entries
      in
      if not !bumped then Alcotest.fail "no labeled abstract node to alter";
      { c with Certify.c_labels = Some (Json.List entries) }
    | _ -> Alcotest.fail "certificate carries no labeling"
  in
  let conds =
    expect_refuted net
      (with_first_cert t (fun _ -> altered))
      "altered labeling"
  in
  Alcotest.(check bool) "labeling condition named" true
    (List.exists (fun c -> String.equal c "labeling-stability") conds)

let test_reject_phantom_edge () =
  let net, t = ring_cert () in
  let c = first_cert t in
  let n_abs = List.length c.Certify.c_groups in
  (* a ring's role graph is a path; (0, n-1) closing the loop is absent *)
  let extra =
    if List.mem (0, n_abs - 1) c.Certify.c_abs_edges then (n_abs - 1, 0)
    else (0, n_abs - 1)
  in
  if List.mem extra c.Certify.c_abs_edges then
    Alcotest.fail "could not find a missing abstract edge to inject"
  else begin
    let phantom =
      { c with Certify.c_abs_edges = extra :: c.Certify.c_abs_edges }
    in
    let conds =
      expect_refuted net
        (with_first_cert t (fun _ -> phantom))
        "phantom edge"
    in
    Alcotest.(check bool) "phantom edge condition named" true
      (List.exists
         (fun c ->
           String.equal c "phantom-edge" || String.equal c "labeling")
         conds)
  end

(* --- audit budget ----------------------------------------------------- *)

let test_audit_incomplete_never_certifies () =
  let net = Synthesis.ring_bgp ~n:6 in
  let t = cert_of net ~name:"ring:6" in
  let budget = Budget.create ~max_ticks:1 () in
  match Certify.check ~budget ~audit:Certify.Full net t with
  | Certify.Audit_incomplete _ -> ()
  | Certify.Certified _ ->
    Alcotest.fail "a starved audit must not report certified"
  | Certify.Refuted fs ->
    Alcotest.failf "starved audit refuted a good certificate: %s"
      (Certify.failures_string fs)

(* --- fuzz: the checker accepts whatever the engine emits -------------- *)

let qcheck_accepts =
  QCheck.Test.make ~count:fuzz_count
    ~name:"Certify.check accepts every engine-produced certificate"
    QCheck.(pair (int_range 4 9) (int_range 0 99))
    (fun (n, seed) ->
      let net =
        match seed mod 3 with
        | 0 -> Synthesis.ring_bgp ~n
        | 1 -> Synthesis.random_network ~n ~seed
        | _ -> Synthesis.mesh_bgp ~n:(min n 5)
      in
      let t = Certify.of_summary ~network:"fuzz" net (compress_exn net) in
      let audit = if seed mod 2 = 0 then Certify.Full else Certify.Sample in
      match Certify.check ~audit net t with
      | Certify.Certified _ -> true
      | v ->
        QCheck.Test.fail_reportf "refused a correct certificate: %a"
          Certify.pp_verdict v)

let fuzz_tests =
  List.map QCheck_alcotest.to_alcotest [ qcheck_accepts ]

let () =
  Alcotest.run "certify"
    [
      ( "accept",
        [
          Alcotest.test_case "ring" `Quick test_accept_ring;
          Alcotest.test_case "fattree" `Quick test_accept_fattree;
          Alcotest.test_case "split groups" `Quick test_accept_split_groups;
          Alcotest.test_case "single result" `Quick test_accept_single_result;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "json" `Quick test_json_roundtrip;
          Alcotest.test_case "garbage" `Quick test_of_json_rejects_garbage;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "merged classes" `Quick test_reject_merged_classes;
          Alcotest.test_case "moved node" `Quick test_reject_moved_node;
          Alcotest.test_case "swapped representative" `Quick
            test_reject_swapped_representative;
          Alcotest.test_case "altered labeling" `Quick
            test_reject_altered_labeling;
          Alcotest.test_case "phantom edge" `Quick test_reject_phantom_edge;
        ] );
      ( "budget",
        [
          Alcotest.test_case "audit incomplete" `Quick
            test_audit_incomplete_never_certifies;
        ] );
      ("fuzz", fuzz_tests);
    ]

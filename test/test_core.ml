(* Tests for the Bonsai core: refinement, abstraction construction, and the
   paper's worked examples (Figures 1, 2/3, 8, 11; Table 1 shapes). *)

let uniform_signature _ _ = 0
let no_prefs _ = []

(* Build a Device.network that only carries a topology (for protocol-level
   tests that bypass the configuration language). *)
let bare_net graph =
  {
    Device.graph;
    routers =
      Array.init (Graph.n_nodes graph) (fun v ->
          Device.default_router (Graph.name graph v));
  }

let compress_bare ?(signature = uniform_signature) ?(prefs = no_prefs) graph
    ~dest =
  let net = bare_net graph in
  let partition, _ = Refine.find_partition net ~dest ~signature ~prefs in
  let universe = Policy_bdd.universe_of_network net in
  Abstraction.make net ~dest ~dest_prefix:(Prefix.of_string "10.0.0.0/24")
    ~universe ~partition
    ~copies:(fun m -> List.length (prefs m))

(* --- Figure 1: the RIP example ------------------------------------- *)

let figure1_graph () =
  (* a -- b1 -- d, a -- b2 -- d *)
  Graph.of_links ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_figure1_compression () =
  let g = figure1_graph () in
  let t = compress_bare g ~dest:3 in
  Alcotest.(check int) "abstract nodes" 3 (Abstraction.n_abstract t);
  (* b1 and b2 share a group *)
  Alcotest.(check bool) "b1 ~ b2" true
    (t.Abstraction.group_of.(1) = t.Abstraction.group_of.(2));
  Alcotest.(check bool) "a alone" true
    (t.Abstraction.group_of.(0) <> t.Abstraction.group_of.(1))

let test_figure1_rip_equivalence () =
  let g = figure1_graph () in
  let t = compress_bare g ~dest:3 in
  let srp = Rip.make g ~dest:3 in
  let sol = Solver.solve_exn srp in
  (* concrete solution: d=0, b=1, a=2 (Figure 1b) *)
  Alcotest.(check (option int)) "d" (Some 0) (Solution.label sol 3);
  Alcotest.(check (option int)) "b1" (Some 1) (Solution.label sol 1);
  Alcotest.(check (option int)) "a" (Some 2) (Solution.label sol 0);
  let abs_srp = Rip.make t.Abstraction.abs_graph ~dest:t.Abstraction.abs_dest in
  let outcome, abs_sol = Equivalence.check_plain ~abs_srp t sol in
  Alcotest.(check bool)
    (String.concat "; " outcome.Equivalence.errors)
    true outcome.Equivalence.ok;
  match abs_sol with
  | None -> Alcotest.fail "no abstract solution constructed"
  | Some abs_sol ->
    Alcotest.(check (option int)) "abstract b label" (Some 1)
      (Solution.label abs_sol (Abstraction.f t 1))

(* --- Figure 8: forall-exists validity ------------------------------ *)

let test_forall_exists_splits_partial_neighbor () =
  (* d -- b -- a1, d -- c, c has no edge to any a: grouping {b, c} violates
     forall-exists once {a1, a2} is abstract; the algorithm must separate b
     from c. Topology: d(0) - b(1), d(0) - c(2), b(1) - a1(3), b(1) - a2(4). *)
  let g = Graph.of_links ~n:5 [ (0, 1); (0, 2); (1, 3); (1, 4) ] in
  let t = compress_bare g ~dest:0 in
  Alcotest.(check bool) "b and c split" true
    (t.Abstraction.group_of.(1) <> t.Abstraction.group_of.(2));
  (* a1 and a2 are symmetric leaves of b: they merge *)
  Alcotest.(check bool) "a1 ~ a2" true
    (t.Abstraction.group_of.(3) = t.Abstraction.group_of.(4))

(* --- forall-exists condition check on the result -------------------- *)

let test_check_passes_on_refined () =
  let g = Generators.fattree ~k:4 in
  let net = Synthesis.fattree_shortest_path g in
  let ec = List.hd (Ecs.compute net) in
  let r = Bonsai_api.compress_ec_exn net ec in
  let _, signature =
    Compile.edge_signatures
      ~universe:r.Bonsai_api.abstraction.Abstraction.universe net
      ~dest:ec.Ecs.ec_prefix
  in
  let violations = Check.check r.Bonsai_api.abstraction ~signature in
  Alcotest.(check int)
    (String.concat "; "
       (List.map (Format.asprintf "%a" Check.pp_violation) violations))
    0 (List.length violations)

(* --- Table 1 shapes -------------------------------------------------- *)

let test_fattree_compresses_to_six () =
  let ft = Generators.fattree ~k:4 in
  let net = Synthesis.fattree_shortest_path ft in
  let ec = List.hd (Ecs.compute net) in
  let r = Bonsai_api.compress_ec_exn net ec in
  Alcotest.(check int) "abstract nodes" 6
    (Abstraction.n_abstract r.Bonsai_api.abstraction);
  Alcotest.(check int) "abstract links" 5
    (Graph.n_links r.Bonsai_api.abstraction.Abstraction.abs_graph)

let test_mesh_compresses_to_two () =
  let net = Synthesis.mesh_bgp ~n:10 in
  let ec = List.hd (Ecs.compute net) in
  let r = Bonsai_api.compress_ec_exn net ec in
  Alcotest.(check int) "abstract nodes" 2
    (Abstraction.n_abstract r.Bonsai_api.abstraction);
  Alcotest.(check int) "abstract links" 1
    (Graph.n_links r.Bonsai_api.abstraction.Abstraction.abs_graph)

let test_ring_compresses_to_half () =
  let net = Synthesis.ring_bgp ~n:10 in
  let ec = List.hd (Ecs.compute net) in
  let r = Bonsai_api.compress_ec_exn net ec in
  (* distances 0..5 with pairs merged: 6 abstract nodes for n=10 *)
  Alcotest.(check int) "abstract nodes" 6
    (Abstraction.n_abstract r.Bonsai_api.abstraction)

(* --- Figure 2/3: the BGP loop-prevention gadget ---------------------- *)

let gadget_net () =
  (* d(0) -- b1(1), b2(2), b3(3); a(4) -- each b. The b's prefer routes
     learned from a (local-preference 200 on import from a). *)
  let g =
    Graph.of_links ~n:5 [ (0, 1); (0, 2); (0, 3); (4, 1); (4, 2); (4, 3) ]
  in
  let prefer_a : Route_map.t =
    [ { verdict = Permit; conds = []; actions = [ Set_local_pref 200 ] } ]
  in
  let routers =
    Array.init 5 (fun v ->
        let r = Device.default_router (Graph.name g v) in
        let r =
          {
            r with
            Device.bgp_neighbors =
              Array.to_list (Graph.succ g v)
              |> List.map (fun u ->
                     let import_rm =
                       if v >= 1 && v <= 3 && u = 4 then Some prefer_a else None
                     in
                     (u, { Device.import_rm; export_rm = None; ibgp = false; rel = Device.Rel_unknown }));
          }
        in
        if v = 0 then
          { r with Device.originated = [ Prefix.of_string "10.0.0.0/24" ] }
        else r)
  in
  { Device.graph = g; routers }

let test_gadget_prefs_split () =
  let net = gadget_net () in
  let ec = List.hd (Ecs.compute net) in
  let r = Bonsai_api.compress_ec_exn net ec in
  let t = r.Bonsai_api.abstraction in
  (* groups: {d}, {b1,b2,b3} with 2 copies, {a} -> 4 abstract nodes *)
  Alcotest.(check int) "abstract nodes" 4 (Abstraction.n_abstract t);
  let bgroup = t.Abstraction.group_of.(1) in
  Alcotest.(check int) "b copies" 2 t.Abstraction.copies.(bgroup);
  Alcotest.(check (list int)) "b members" [ 1; 2; 3 ]
    t.Abstraction.groups.(bgroup)

let test_gadget_equivalence () =
  let net = gadget_net () in
  let ec = List.hd (Ecs.compute net) in
  let r = Bonsai_api.compress_ec_exn net ec in
  let t = r.Bonsai_api.abstraction in
  let srp = Compile.bgp_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix in
  (* multiple stable solutions exist; every one must map to the abstraction *)
  let sols = Solver.solutions_sample ~tries:8 srp in
  Alcotest.(check bool) "found solutions" true (List.length sols >= 1);
  List.iter
    (fun sol ->
      let outcome, _ = Equivalence.check_bgp t sol in
      Alcotest.(check bool)
        (String.concat "; " outcome.Equivalence.errors)
        true outcome.Equivalence.ok)
    sols

let test_gadget_exhaustive_bisimulation () =
  (* Both directions of CP-equivalence, checked exhaustively on the
     gadget: every concrete stable solution maps into the abstraction
     (Theorem 4.5, forward), and every abstract stable solution is the
     image of some concrete one (reverse — no false positives). Abstract
     solutions are compared up to permutation of a group's copies. *)
  let net = gadget_net () in
  let ec = List.hd (Ecs.compute net) in
  let t = (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction in
  let srp = Compile.bgp_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix in
  let concrete_sols = Solver.enumerate_solutions srp in
  Alcotest.(check int) "three concrete solutions" 3 (List.length concrete_sols);
  let abs_srp = Abstraction.bgp_srp t in
  let abs_sols = Solver.enumerate_solutions abs_srp in
  Alcotest.(check bool) "abstract solutions exist" true (abs_sols <> []);
  let project (sol : Bgp.attr Solution.t) =
    (* compare up to copy permutation: node ids inside AS paths are
       canonicalized to their group ids *)
    let canon (attr : Bgp.attr) =
      { attr with Bgp.path = List.map (fun a -> t.Abstraction.group_of_abs.(a)) attr.Bgp.path }
    in
    List.init (Abstraction.n_abstract t) (fun a ->
        (t.Abstraction.group_of_abs.(a), Option.map canon (Solution.label sol a)))
    |> List.sort compare
  in
  let constructed =
    List.filter_map
      (fun sol ->
        let outcome, abs = Equivalence.check_bgp t sol in
        if outcome.Equivalence.ok then Option.map project abs else None)
      concrete_sols
  in
  Alcotest.(check int) "all concrete solutions map" 3 (List.length constructed);
  List.iter
    (fun abs_sol ->
      Alcotest.(check bool) "abstract solution realized concretely" true
        (List.mem (project abs_sol) constructed))
    abs_sols

let test_gadget_naive_abstraction_unsound () =
  (* Collapsing b1,b2,b3 into a single abstract node (Figure 2b) cannot
     map the concrete solution: the construction needs 2 behaviors. *)
  let net = gadget_net () in
  let ec = List.hd (Ecs.compute net) in
  let _, signature = Compile.edge_signatures net ~dest:ec.Ecs.ec_prefix in
  let partition, _ =
    (* lying about prefs: no splitting *)
    Refine.find_partition net ~dest:0 ~signature ~prefs:(fun _ -> [])
  in
  let universe = Policy_bdd.universe_of_network net in
  let t =
    Abstraction.make net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix ~universe
      ~partition ~copies:(fun _ -> 1)
  in
  let srp = Compile.bgp_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix in
  let sol = Solver.solve_exn srp in
  let outcome, _ = Equivalence.check_bgp t sol in
  Alcotest.(check bool) "naive abstraction rejected" false
    outcome.Equivalence.ok

(* --- Figure 13 / Theorem 4.4: the behavior bound ---------------------- *)

let three_level_gadget () =
  (* d(0) -- b1(1), b2(2), b3(3); a1(4) and a2(5) -- each b. The b's
     prefer a2's routes (lp 300) over a1's (lp 200) over direct (100):
     prefs(b) = {100, 200, 300}, so the b group gets three copies, and no
     stable solution may exhibit more than three behaviors. *)
  let g =
    Graph.of_links ~n:6
      [ (0, 1); (0, 2); (0, 3); (4, 1); (4, 2); (4, 3); (5, 1); (5, 2); (5, 3) ]
  in
  let pref lp : Route_map.t =
    [ { verdict = Permit; conds = []; actions = [ Set_local_pref lp ] } ]
  in
  let routers =
    Array.init 6 (fun v ->
        let r = Device.default_router (Graph.name g v) in
        let r =
          {
            r with
            Device.bgp_neighbors =
              Array.to_list (Graph.succ g v)
              |> List.map (fun u ->
                     let import_rm =
                       if v >= 1 && v <= 3 && u = 4 then Some (pref 200)
                       else if v >= 1 && v <= 3 && u = 5 then Some (pref 300)
                       else None
                     in
                     (u, { Device.import_rm; export_rm = None; ibgp = false; rel = Device.Rel_unknown }));
          }
        in
        if v = 0 then
          { r with Device.originated = [ Prefix.of_string "10.0.0.0/24" ] }
        else r)
  in
  { Device.graph = g; routers }

let test_three_level_split_and_bound () =
  let net = three_level_gadget () in
  let ec = List.hd (Ecs.compute net) in
  let r = Bonsai_api.compress_ec_exn net ec in
  let t = r.Bonsai_api.abstraction in
  let bgroup = t.Abstraction.group_of.(1) in
  Alcotest.(check int) "three copies (|prefs| = 3)" 3
    t.Abstraction.copies.(bgroup);
  (* every reachable stable solution maps into the abstraction, i.e. has
     at most |prefs| behaviors (Theorem 4.4) *)
  let srp = Compile.bgp_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix in
  let sols = Solver.solutions_sample ~tries:16 srp in
  Alcotest.(check bool) "solutions found" true (sols <> []);
  List.iter
    (fun sol ->
      let outcome, _ = Equivalence.check_bgp t sol in
      Alcotest.(check bool)
        (String.concat "; " outcome.Equivalence.errors)
        true outcome.Equivalence.ok)
    sols

(* --- iBGP neighbors compress together (paper section 6) --------------- *)

let test_ibgp_pair_merges () =
  (* d(0) -(ebgp)- r1(1), r2(2); r1 -(ibgp)- r2; x(3) -(ebgp)- r1, r2.
     The iBGP pair has identical configurations and must merge; the edge
     between them is never used (no re-advertisement over iBGP). *)
  let g = Graph.of_links ~n:4 [ (0, 1); (0, 2); (1, 2); (3, 1); (3, 2) ] in
  let routers =
    Array.init 4 (fun v ->
        let r = Device.default_router (Graph.name g v) in
        let r =
          {
            r with
            Device.bgp_neighbors =
              Array.to_list (Graph.succ g v)
              |> List.map (fun u ->
                     let ibgp = (v = 1 && u = 2) || (v = 2 && u = 1) in
                     ( u,
                       {
                         Device.import_rm = None;
                         export_rm = None;
                         ibgp;
                         rel = Device.Rel_unknown;
                       } ));
          }
        in
        if v = 0 then
          { r with Device.originated = [ Prefix.of_string "10.0.0.0/24" ] }
        else r)
  in
  let net = { Device.graph = g; routers } in
  let ec = List.hd (Ecs.compute net) in
  let r = Bonsai_api.compress_ec_exn net ec in
  let t = r.Bonsai_api.abstraction in
  Alcotest.(check bool) "r1 ~ r2" true
    (t.Abstraction.group_of.(1) = t.Abstraction.group_of.(2));
  Alcotest.(check int) "3 abstract nodes" 3 (Abstraction.n_abstract t);
  (* and the multi-protocol solution maps *)
  let srp = Compile.multi_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix in
  let sol = Solver.solve_exn srp in
  let outcome, _ = Equivalence.check_multi t sol in
  Alcotest.(check bool)
    (String.concat "; " outcome.Equivalence.errors)
    true outcome.Equivalence.ok

(* --- Figure 11: policy changes the abstraction size ------------------ *)

let test_figure11_prefer_bottom_is_bigger () =
  let ft = Generators.fattree ~k:4 in
  let shortest = Synthesis.fattree_shortest_path ft in
  let prefer = Synthesis.fattree_prefer_bottom ft in
  let size net =
    let ec = List.hd (Ecs.compute net) in
    let r = Bonsai_api.compress_ec_exn net ec in
    Abstraction.n_abstract r.Bonsai_api.abstraction
  in
  let s1 = size shortest and s2 = size prefer in
  Alcotest.(check bool)
    (Printf.sprintf "prefer-bottom (%d) > shortest-path (%d)" s2 s1)
    true (s2 > s1)

(* --- abstraction accessors --------------------------------------------- *)

let test_abstraction_accessors () =
  let net = Synthesis.fattree_shortest_path (Generators.fattree ~k:4) in
  let ec = List.hd (Ecs.compute net) in
  let t = (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction in
  (* f is onto the abstract node set for single-copy groups *)
  let hit = Array.make (Abstraction.n_abstract t) false in
  for u = 0 to Graph.n_nodes net.Device.graph - 1 do
    hit.(Abstraction.f t u) <- true
  done;
  Array.iteri
    (fun a h ->
      if t.Abstraction.copies.(t.Abstraction.group_of_abs.(a)) = 1 then
        Alcotest.(check bool) (Printf.sprintf "abstract %d covered" a) true h)
    hit;
  (* repr is a member of its group *)
  for a = 0 to Abstraction.n_abstract t - 1 do
    Alcotest.(check bool) "repr in members" true
      (List.mem (Abstraction.repr_of_abs t a) (Abstraction.members_of_abs t a))
  done;
  (* repr_edge returns genuine concrete edges mapping to the abstract one *)
  Graph.iter_edges t.Abstraction.abs_graph (fun a b ->
      let u, v = Abstraction.repr_edge t a b in
      Alcotest.(check bool) "concrete edge" true
        (Graph.has_edge net.Device.graph u v);
      Alcotest.(check int) "u in group a" t.Abstraction.group_of_abs.(a)
        t.Abstraction.group_of.(u);
      Alcotest.(check int) "v in group b" t.Abstraction.group_of_abs.(b)
        t.Abstraction.group_of.(v));
  (* compression ratio consistent with sizes *)
  let rn, _ = Abstraction.compression_ratio t in
  Alcotest.(check (float 0.001)) "node ratio"
    (float_of_int (Graph.n_nodes net.Device.graph)
    /. float_of_int (Abstraction.n_abstract t))
    rn

let test_h_attr_erasure () =
  let net = (Synthesis.datacenter ()).Synthesis.net in
  let ec = List.hd (Ecs.compute net) in
  let t = (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction in
  (* community 1000 is attached by a leaf but matched nowhere: erased *)
  let a = { Bgp.init with Bgp.comms = [ 1000 ]; path = [ 3; 1 ] } in
  let h = Abstraction.h_attr t ~fr:(fun v -> v * 10) a in
  Alcotest.(check (list int)) "unused comm erased" [] h.Bgp.comms;
  Alcotest.(check (list int)) "path mapped" [ 30; 10 ] h.Bgp.path

(* --- parallel compression (paper section 7) ---------------------------- *)

let test_parallel_compression_deterministic () =
  let net = Synthesis.fattree_shortest_path (Generators.fattree ~k:8) in
  let sizes s =
    List.map
      (fun r ->
        ( Format.asprintf "%a" Prefix.pp r.Bonsai_api.ec.Ecs.ec_prefix,
          Abstraction.n_abstract r.Bonsai_api.abstraction ))
      s.Bonsai_api.results
    |> List.sort compare
  in
  let seq = Bonsai_api.compress_exn ~stride:3 net in
  let par = Bonsai_api.compress_exn ~stride:3 ~domains:3 net in
  Alcotest.(check (list (pair string int))) "same abstractions" (sizes seq)
    (sizes par);
  Alcotest.(check int) "same anycast count" seq.Bonsai_api.skipped_anycast
    par.Bonsai_api.skipped_anycast

(* --- roles (paper section 8) ----------------------------------------- *)

let test_datacenter_roles () =
  let dc = Synthesis.datacenter () in
  let semantic = Bonsai_api.roles dc.Synthesis.net in
  let naive = Bonsai_api.roles ~keep_unmatched_comms:true dc.Synthesis.net in
  Alcotest.(check int) "semantic roles" 26 semantic;
  Alcotest.(check int) "naive roles" 112 naive

(* --- explain ------------------------------------------------------------ *)

let test_explain () =
  let ft = Generators.fattree ~k:4 in
  let net = Synthesis.fattree_prefer_bottom ft in
  let ec = List.hd (Ecs.compute net) in
  (* same role: nothing to explain *)
  Alcotest.(check (list string)) "same role" []
    (Bonsai_api.explain net ec ft.Generators.ft_edge.(2) ft.Generators.ft_edge.(3));
  (* different roles: at least one reason, mentioning the preference gap *)
  let reasons =
    Bonsai_api.explain net ec ft.Generators.ft_agg.(0) ft.Generators.ft_edge.(2)
  in
  Alcotest.(check bool) "has reasons" true (reasons <> []);
  Alcotest.(check bool) "mentions local preferences" true
    (List.exists
       (fun r -> Astring_contains.contains r "local preferences")
       reasons)

let () =
  Alcotest.run "bonsai-core"
    [
      ( "figure1",
        [
          Alcotest.test_case "compression" `Quick test_figure1_compression;
          Alcotest.test_case "rip equivalence" `Quick
            test_figure1_rip_equivalence;
        ] );
      ( "topology-abstraction",
        [
          Alcotest.test_case "forall-exists split" `Quick
            test_forall_exists_splits_partial_neighbor;
          Alcotest.test_case "conditions hold" `Quick
            test_check_passes_on_refined;
        ] );
      ( "table1-shapes",
        [
          Alcotest.test_case "fattree -> 6" `Quick test_fattree_compresses_to_six;
          Alcotest.test_case "mesh -> 2" `Quick test_mesh_compresses_to_two;
          Alcotest.test_case "ring -> n/2+1" `Quick test_ring_compresses_to_half;
        ] );
      ( "bgp-gadget",
        [
          Alcotest.test_case "prefs split" `Quick test_gadget_prefs_split;
          Alcotest.test_case "equivalence" `Quick test_gadget_equivalence;
          Alcotest.test_case "exhaustive bisimulation" `Quick
            test_gadget_exhaustive_bisimulation;
          Alcotest.test_case "naive unsound" `Quick
            test_gadget_naive_abstraction_unsound;
        ] );
      ( "theorem-4.4",
        [
          Alcotest.test_case "three-level bound" `Quick
            test_three_level_split_and_bound;
        ] );
      ( "ibgp",
        [ Alcotest.test_case "pair merges" `Quick test_ibgp_pair_merges ] );
      ( "figure11",
        [
          Alcotest.test_case "prefer-bottom bigger" `Quick
            test_figure11_prefer_bottom_is_bigger;
        ] );
      ( "abstraction",
        [
          Alcotest.test_case "accessors" `Quick test_abstraction_accessors;
          Alcotest.test_case "h erasure" `Quick test_h_attr_erasure;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "deterministic" `Quick
            test_parallel_compression_deterministic;
        ] );
      ( "explain",
        [ Alcotest.test_case "role differences" `Quick test_explain ] );
      ( "roles",
        [ Alcotest.test_case "datacenter 26/112" `Quick test_datacenter_roles ]
      );
    ]

(* Tests for the resource-governance layer (lib/guard): budget mechanics,
   budget exhaustion in each governed hot loop (Bdd, Solver, Refine,
   Fault_engine), graceful degradation in Bonsai_api, and the QCheck
   crash-proofing harness — no input may escape the parse → compile →
   compress → solve pipeline as anything but a typed error.

   The QCheck iteration count defaults to a small CI-friendly number and
   scales with the FUZZ_COUNT environment variable (e.g.
   `FUZZ_COUNT=500 dune exec test/test_guard.exe` for a local soak). *)

let fuzz_count =
  match Option.bind (Sys.getenv_opt "FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 60

let one_tick () = Budget.create ~max_ticks:1 ()

let bare_net graph =
  {
    Device.graph;
    routers =
      Array.init (Graph.n_nodes graph) (fun v ->
          Device.default_router (Graph.name graph v));
  }

(* --- Budget mechanics ------------------------------------------------- *)

let test_infinite_never_exhausts () =
  for _ = 1 to 10_000 do
    Budget.tick Budget.infinite ~phase:"test";
    Budget.check Budget.infinite ~phase:"test"
  done;
  Alcotest.(check bool) "is_infinite" true (Budget.is_infinite Budget.infinite);
  Alcotest.(check bool) "not exhausted" false
    (Budget.exhausted Budget.infinite)

let test_tick_limit () =
  let b = Budget.create ~max_ticks:3 () in
  Budget.tick b ~phase:"a";
  Budget.tick b ~phase:"a";
  Budget.tick b ~phase:"a";
  match Budget.tick b ~phase:"b" with
  | () -> Alcotest.fail "4th tick must exhaust a 3-tick budget"
  | exception Budget.Exhausted info ->
    Alcotest.(check string) "phase of the fatal tick" "b" info.Budget.phase;
    Alcotest.(check int) "ticks consumed" 4 info.Budget.ticks;
    Alcotest.(check bool) "exhausted poll" true (Budget.exhausted b)

let test_deadline () =
  let b = Budget.create ~deadline_s:0.0 () in
  (* [check] always consults the clock, so an already-passed deadline is
     caught on the first call *)
  match Budget.check b ~phase:"t" with
  | () -> Alcotest.fail "expired deadline must exhaust"
  | exception Budget.Exhausted info ->
    Alcotest.(check bool) "elapsed recorded" true (info.Budget.elapsed_s >= 0.0)

let test_cancel () =
  let b = Budget.create () in
  Budget.tick b ~phase:"t";
  Alcotest.(check bool) "not yet cancelled" false (Budget.cancelled b);
  Budget.cancel b;
  match Budget.tick b ~phase:"t" with
  | () -> Alcotest.fail "cancelled budget must exhaust"
  | exception Budget.Exhausted _ -> ()

let test_with_note () =
  let b = one_tick () in
  let info = Budget.info b ~phase:"p" () in
  Alcotest.(check (option string)) "no note" None info.Budget.note;
  let info = Budget.with_note info "partition had 3/9 classes" in
  Alcotest.(check (option string))
    "note replaced"
    (Some "partition had 3/9 classes")
    info.Budget.note

(* --- Bdd: apply/ite recursion is governed ----------------------------- *)

(* enough conjunctions of fresh variables to need many uncached recursion
   steps *)
let build_chain man =
  let acc = ref (Bdd.var man 0) in
  for i = 1 to 40 do
    acc := Bdd.and_ man !acc (Bdd.var man i)
  done;
  !acc

let test_bdd_budget_exhausts () =
  let man = Bdd.man () in
  Bdd.set_budget man (one_tick ());
  match build_chain man with
  | _ -> Alcotest.fail "1-tick budget must stop the BDD build"
  | exception Budget.Exhausted info ->
    Alcotest.(check string) "phase" "bdd" info.Budget.phase

let test_bdd_infinite_unchanged () =
  let man = Bdd.man () in
  let reference = build_chain man in
  let man' = Bdd.man () in
  Bdd.set_budget man' Budget.infinite;
  let budgeted = build_chain man' in
  (* same function: evaluates true exactly on the all-ones assignment *)
  Alcotest.(check bool) "sat under all-ones" true
    (Bdd.eval budgeted (fun _ -> true));
  Alcotest.(check bool) "unsat when var 17 is false" false
    (Bdd.eval budgeted (fun i -> i <> 17));
  Alcotest.(check bool) "reference agrees" true
    (Bdd.eval reference (fun _ -> true))

let test_bdd_node_cap () =
  let man = Bdd.man () in
  Bdd.set_node_cap man (Some 4);
  match build_chain man with
  | _ -> Alcotest.fail "a 4-node cap must stop a 41-variable chain"
  | exception Budget.Exhausted info ->
    Alcotest.(check bool) "note names the cap" true
      (match info.Budget.note with Some _ -> true | None -> false)

(* --- Solver: the step loop is governed -------------------------------- *)

let ring10 = Generators.ring ~n:10

let test_solver_budget_exhausts () =
  match Solver.solve ~budget:(one_tick ()) (Rip.make ring10 ~dest:0) with
  | Ok _ -> Alcotest.fail "1 tick cannot solve a 10-ring"
  | Error (`Diverged _) ->
    Alcotest.fail "budget exhaustion must not be classified as divergence"
  | Error (`Budget (info, partial)) ->
    Alcotest.(check string) "phase" "solve" info.Budget.phase;
    (* the partial labeling is still a usable (unstable) solution *)
    Alcotest.(check int) "partial solution covers the graph" 10
      (Graph.n_nodes partial.Solution.srp.Srp.graph)

let test_solver_infinite_unchanged () =
  let solve b =
    match Solver.solve ?budget:b (Rip.make ring10 ~dest:0) with
    | Ok (s, stats) -> (s, stats.Solver.steps)
    | Error _ -> Alcotest.fail "a 10-ring must stabilize"
  in
  let s_plain, steps_plain = solve None in
  let s_inf, steps_inf = solve (Some Budget.infinite) in
  Alcotest.(check int) "same step count" steps_plain steps_inf;
  (* RIP labels are plain ints: structural equality is meaningful *)
  Alcotest.(check bool) "same labeling" true
    (s_plain.Solution.labels = s_inf.Solution.labels)

(* --- Refine: the worklist is governed --------------------------------- *)

let test_refine_budget_exhausts () =
  let net = bare_net ring10 in
  match
    Refine.find_partition ~budget:(one_tick ()) net ~dest:0
      ~signature:(fun _ _ -> 0)
      ~prefs:(fun _ -> [])
  with
  | _ -> Alcotest.fail "1 tick cannot refine a 10-ring"
  | exception Budget.Exhausted info ->
    Alcotest.(check string) "phase" "refine" info.Budget.phase;
    Alcotest.(check bool) "note records partition progress" true
      (match info.Budget.note with
      | Some n -> Astring_contains.contains n "classes"
      | None -> false)

let test_refine_infinite_unchanged () =
  let net = bare_net ring10 in
  let run b =
    let partition, stats =
      Refine.find_partition ?budget:b net ~dest:0
        ~signature:(fun _ _ -> 0)
        ~prefs:(fun _ -> [])
    in
    (Union_split_find.num_classes partition, stats.Refine.iterations)
  in
  Alcotest.(check (pair int int))
    "identical partition and iteration count" (run None)
    (run (Some Budget.infinite))

(* --- Fault_engine: surveys truncate, never raise ---------------------- *)

let test_survey_truncates () =
  let srp = Rip.make ring10 ~dest:0 in
  let plan = Fault_engine.plan ~k:1 ring10 in
  let full = Fault_engine.survey srp plan in
  Alcotest.(check int) "unbudgeted survey skips nothing" 0
    full.Fault_engine.n_skipped;
  let b = Budget.create ~max_ticks:25 () in
  let truncated = Fault_engine.survey ~budget:b srp plan in
  Alcotest.(check bool) "budgeted survey skips scenarios" true
    (truncated.Fault_engine.n_skipped > 0);
  Alcotest.(check int) "outcomes + skipped = planned"
    (List.length plan.Fault_engine.scenarios)
    (List.length truncated.Fault_engine.outcomes
    + truncated.Fault_engine.n_skipped)

(* --- Bonsai_api: typed errors and graceful degradation ---------------- *)

let test_compress_ec_budget_error () =
  let net = Synthesis.random_network ~n:10 ~seed:7 in
  let ec = List.hd (Ecs.compute net) in
  match Bonsai_api.compress_ec ~budget:(one_tick ()) net ec with
  | Ok _ -> Alcotest.fail "1 tick cannot compress"
  | Error (Bonsai_error.Budget_exceeded _) -> ()
  | Error e ->
    Alcotest.failf "expected Budget_exceeded, got %a" Bonsai_error.pp e

let test_compress_degrades_to_identity () =
  let net = Synthesis.random_network ~n:10 ~seed:7 in
  let s =
    Bonsai_api.compress_exn ~budget:(Budget.create ~max_ticks:1 ()) net
  in
  (match s.Bonsai_api.degradation with
  | None -> Alcotest.fail "a 1-tick budget must degrade"
  | Some d ->
    Alcotest.(check int) "no class completed" 0 d.Bonsai_api.deg_completed;
    Alcotest.(check int) "all classes attempted" d.Bonsai_api.deg_total
      (List.length s.Bonsai_api.results));
  List.iter
    (fun r ->
      Alcotest.(check bool) "flagged degraded" true r.Bonsai_api.degraded;
      let t = r.Bonsai_api.abstraction in
      (* the identity abstraction: abstract network = concrete network *)
      Alcotest.(check int) "identity node count"
        (Graph.n_nodes net.Device.graph)
        (Graph.n_nodes t.Abstraction.abs_graph))
    s.Bonsai_api.results

let test_degraded_abstraction_is_sound () =
  let net = Synthesis.random_network ~n:8 ~seed:3 in
  let s =
    Bonsai_api.compress_exn ~budget:(Budget.create ~max_ticks:1 ()) net
  in
  let r = List.hd s.Bonsai_api.results in
  Alcotest.(check bool) "degraded" true r.Bonsai_api.degraded;
  let ec = r.Bonsai_api.ec in
  let sol =
    Solver.solve_exn
      (Compile.bgp_srp net ~dest:(Ecs.single_origin ec)
         ~dest_prefix:ec.Ecs.ec_prefix)
  in
  let outcome, _ = Equivalence.check_bgp r.Bonsai_api.abstraction sol in
  Alcotest.(check bool) "identity fallback is CP-equivalent" true
    outcome.Equivalence.ok

let test_error_exit_codes_distinct () =
  let open Bonsai_error in
  let codes =
    List.map exit_code
      [
        Parse_error { diagnostics = [] };
        Compile_error "";
        Budget_exceeded
          { Budget.phase = "x"; ticks = 0; elapsed_s = 0.0; note = None };
        Divergence "";
        Soundness_break "";
        Internal "";
      ]
  in
  Alcotest.(check int) "codes are pairwise distinct"
    (List.length codes)
    (List.length (List.sort_uniq Int.compare codes));
  Alcotest.(check bool) "none collides with success or cmdliner" true
    (List.for_all (fun c -> c <> 0 && c <> 1 && c < 120) codes)

let test_protect_catches () =
  (match Bonsai_error.protect (fun () -> raise Exit) with
  | Error (Bonsai_error.Internal _) -> ()
  | _ -> Alcotest.fail "unknown exceptions become Internal");
  match
    Bonsai_error.protect (fun () ->
        Budget.tick (Budget.create ~max_ticks:0 ()) ~phase:"p")
  with
  | Error (Bonsai_error.Budget_exceeded _) -> ()
  | _ -> Alcotest.fail "Exhausted becomes Budget_exceeded"

(* --- crash-proofing: the fuzz suites ---------------------------------- *)

(* Random bytes, biased toward config-looking shards so the parser gets
   past the first token reasonably often. *)
let garbage_gen =
  QCheck.Gen.(
    frequency
      [
        (2, string_size ~gen:printable (int_range 0 200));
        (1, string_size ~gen:char (int_range 0 200));
        ( 3,
          oneofl
            [
              "topology\n  node a\n  node b\n  link a b\n";
              "topology\n  node a\nrouter a\n  originate 10.0.0.0/8\n";
              "router ghost\n  ospf area 0\n";
              "topology\n  link a b\n";
              "route-map RM\n  10 permit\n    set local-pref banana\n";
              "topology\n  node a\n  node a\n";
            ] );
      ])

let prop_parse_never_crashes =
  QCheck.Test.make ~name:"parse_full never raises" ~count:(fuzz_count * 4)
    (QCheck.make garbage_gen) (fun text ->
      match Config_text.parse_full text with
      | Ok _ | Error _ -> true
      | exception e ->
        QCheck.Test.fail_reportf "parse_full raised %s"
          (Printexc.to_string e))

(* Print a real network, then corrupt the text deterministically from the
   seed: truncate, drop a line, or clobber a byte. Parsing may fail (typed
   diagnostics) or succeed; either way nothing may escape. *)
let corrupt ~seed text =
  let n = String.length text in
  if n = 0 then text
  else
    match seed mod 4 with
    | 0 -> String.sub text 0 (seed * 37 mod n) (* truncate *)
    | 1 ->
      String.split_on_char '\n' text
      |> List.filteri (fun i _ -> i <> seed * 13 mod 40)
      |> String.concat "\n" (* drop a line *)
    | 2 ->
      let b = Bytes.of_string text in
      Bytes.set b (seed * 101 mod n) '@';
      Bytes.to_string b (* clobber a byte *)
    | _ -> text (* leave intact: exercise the full pipeline *)

(* End-to-end: parse → compile → compress → solve under a per-case
   deadline. Only typed errors ([Bonsai_error.Error], [Budget.Exhausted])
   may escape; a successful non-degraded run must satisfy the
   differential oracle (CP-equivalence against the concrete solution). *)
let pipeline_case (n, seed) =
  let text = corrupt ~seed (Config_text.print (Synthesis.random_network ~n ~seed)) in
  let budget = Budget.create ~deadline_s:2.0 () in
  let run () =
    match Config_text.parse_full text with
    | Error diags ->
      Bonsai_error.error (Bonsai_error.Parse_error { diagnostics = diags })
    | Ok (net, _) -> (
      match Ecs.compute net with
      | [] -> `No_ecs
      | ec :: _ when List.length ec.Ecs.ec_origins > 1 -> `No_ecs
      | ec :: _ ->
        let r = Bonsai_api.compress_ec_exn ~budget net ec in
        let srp =
          Compile.bgp_srp net ~dest:(Ecs.single_origin ec)
            ~dest_prefix:ec.Ecs.ec_prefix
        in
        (match Solver.solve ~budget srp with
        | Ok (sol, _) -> `Solved (r, sol)
        | Error (`Diverged _) | Error (`Budget _) -> `Unstable))
  in
  match run () with
  | `No_ecs | `Unstable -> true
  | `Solved (r, sol) ->
    r.Bonsai_api.degraded
    || (fst (Equivalence.check_bgp r.Bonsai_api.abstraction sol))
         .Equivalence.ok
  | exception Bonsai_error.Error _ -> true
  | exception Budget.Exhausted _ -> true
  | exception e ->
    QCheck.Test.fail_reportf "pipeline escaped a %s"
      (Printexc.to_string e)

let prop_pipeline_never_crashes =
  QCheck.Test.make ~name:"pipeline: only typed errors escape"
    ~count:fuzz_count
    QCheck.(pair (int_range 2 12) (int_range 0 100_000))
    pipeline_case

(* Same pipeline under a starvation budget: with one tick everything
   either degrades or reports Budget_exceeded — never hangs, never
   crashes. *)
let prop_pipeline_starved =
  QCheck.Test.make ~name:"pipeline: 1-tick budget is typed"
    ~count:fuzz_count
    QCheck.(pair (int_range 2 12) (int_range 0 100_000))
    (fun (n, seed) ->
      let net = Synthesis.random_network ~n ~seed in
      match
        Bonsai_error.protect (fun () ->
            Bonsai_api.compress_exn
              ~budget:(Budget.create ~max_ticks:1 ())
              net)
      with
      | Ok s -> s.Bonsai_api.degradation <> None
      | Error (Bonsai_error.Budget_exceeded _) -> true
      | Error e ->
        QCheck.Test.fail_reportf "unexpected typed error %s"
          (Format.asprintf "%a" Bonsai_error.pp e))

let () =
  Alcotest.run "guard"
    [
      ( "budget",
        [
          Alcotest.test_case "infinite" `Quick test_infinite_never_exhausts;
          Alcotest.test_case "tick limit" `Quick test_tick_limit;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "with_note" `Quick test_with_note;
        ] );
      ( "governed-loops",
        [
          Alcotest.test_case "bdd exhausts" `Quick test_bdd_budget_exhausts;
          Alcotest.test_case "bdd infinite unchanged" `Quick
            test_bdd_infinite_unchanged;
          Alcotest.test_case "bdd node cap" `Quick test_bdd_node_cap;
          Alcotest.test_case "solver exhausts" `Quick
            test_solver_budget_exhausts;
          Alcotest.test_case "solver infinite unchanged" `Quick
            test_solver_infinite_unchanged;
          Alcotest.test_case "refine exhausts" `Quick
            test_refine_budget_exhausts;
          Alcotest.test_case "refine infinite unchanged" `Quick
            test_refine_infinite_unchanged;
          Alcotest.test_case "survey truncates" `Quick test_survey_truncates;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "compress_ec typed error" `Quick
            test_compress_ec_budget_error;
          Alcotest.test_case "compress degrades to identity" `Quick
            test_compress_degrades_to_identity;
          Alcotest.test_case "degraded abstraction sound" `Quick
            test_degraded_abstraction_is_sound;
          Alcotest.test_case "exit codes distinct" `Quick
            test_error_exit_codes_distinct;
          Alcotest.test_case "protect" `Quick test_protect_catches;
        ] );
      ( "fuzz",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_parse_never_crashes;
            prop_pipeline_never_crashes;
            prop_pipeline_starved;
          ] );
    ]

(* Whole-network provenance dataflow: the generic engine (worklist
   fixpoint, widening, budget degradation), the flow checks on the seeded
   leak/transit shapes, Cond_bdd community-encoding edge cases, the
   provider/customer/peer relation round-trip, and two QCheck properties:
   every flow fact over-approximates the simulated solution, and the
   flow-sensitive community-provenance check never flags a community the
   simulator actually delivers. *)

let check_names ds = List.map (fun d -> d.Diag.check) ds
let has_check name ds = List.exists (String.equal name) (check_names ds)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1))
  in
  go 0

let parse_net s =
  match Config_text.parse s with
  | Ok net -> net
  | Error m -> Alcotest.failf "fixture did not parse: %s" m

(* --- the generic dataflow engine ------------------------------------- *)

let test_dataflow_chain () =
  let r =
    Dataflow.solve
      {
        Dataflow.nodes = 4;
        succ = (fun v -> if v < 3 then [ v + 1 ] else []);
        transfer = (fun ~src:_ ~dst:_ f -> Some (f + 1));
        seeds = [ (0, 0) ];
        join = max;
        equal = Int.equal;
        top = 1000;
        widen = None;
      }
  in
  Alcotest.(check (list (option int)))
    "hop counts propagate"
    [ Some 0; Some 1; Some 2; Some 3 ]
    (Array.to_list r.Dataflow.facts);
  Alcotest.(check bool) "not degraded" true (Option.is_none r.Dataflow.degraded)

let test_dataflow_unreachable () =
  let r =
    Dataflow.solve
      {
        Dataflow.nodes = 3;
        succ = (fun v -> if v = 0 then [ 1 ] else []);
        transfer = (fun ~src:_ ~dst:_ f -> Some f);
        seeds = [ (0, true) ];
        join = ( || );
        equal = Bool.equal;
        top = true;
        widen = None;
      }
  in
  Alcotest.(check (option bool)) "node 2 unreached" None r.Dataflow.facts.(2)

let test_dataflow_widen () =
  (* a 2-cycle whose transfer strictly grows: only widening terminates it *)
  let r =
    Dataflow.solve
      {
        Dataflow.nodes = 2;
        succ = (fun v -> [ 1 - v ]);
        transfer = (fun ~src:_ ~dst:_ f -> Some (f + 1));
        seeds = [ (0, 0) ];
        join = max;
        equal = Int.equal;
        top = max_int;
        widen = Some (fun ~joins f -> if joins > 4 then max_int else f);
      }
  in
  Alcotest.(check bool)
    "cycle terminated at top" true
    (Array.exists (function Some t -> t = max_int | None -> false)
       r.Dataflow.facts)

let test_dataflow_budget () =
  let budget = Budget.create ~max_ticks:3 () in
  let r =
    Dataflow.solve ~budget
      {
        Dataflow.nodes = 16;
        succ = (fun v -> if v < 15 then [ v + 1 ] else []);
        transfer = (fun ~src:_ ~dst:_ f -> Some f);
        seeds = [ (0, false) ];
        join = ( || );
        equal = Bool.equal;
        top = true;
        widen = None;
      }
  in
  Alcotest.(check bool) "degraded" true (Option.is_some r.Dataflow.degraded);
  Alcotest.(check bool)
    "every fact forced to top (sound, not partial)" true
    (Array.for_all (function Some true -> true | _ -> false) r.Dataflow.facts)

(* --- seeded fixtures -------------------------------------------------- *)

(* Multi-hop OSPF->BGP->OSPF leak across two OSPF domains: invisible to
   the per-device redistribution-cycle check (exporter a and re-injector b
   are in different domains), found by the provenance fixpoint. *)
let leak_conf =
  "topology\n  node o\n  node a\n  node m\n  node b\n  node d\n\
  \  link o a\n  link a m\n  link m b\n  link b d\n\n\
   router o\n  ospf link a cost 1\n  originate 10.90.0.0/24\n\n\
   router a\n  ospf link o cost 1\n  bgp neighbor m\n\
  \  redistribute ospf-into-bgp\n\n\
   router m\n  bgp neighbor a\n  bgp neighbor b\n\n\
   router b\n  ospf link d cost 1\n  bgp neighbor m\n\
  \  redistribute bgp-into-ospf\n\n\
   router d\n  ospf link b cost 1\n"

let transit_conf =
  "topology\n  node orig\n  node p1\n  node p2\n  node c\n\
  \  link orig p1\n  link p1 c\n  link c p2\n\n\
   router orig\n  bgp neighbor p1\n  originate 10.99.0.0/24\n\n\
   router p1\n  bgp neighbor orig customer\n  bgp neighbor c customer\n\n\
   router c\n  bgp neighbor p1 provider\n  bgp neighbor p2 provider\n\n\
   router p2\n  bgp neighbor c customer\n"

let test_leak_detected () =
  let net = parse_net leak_conf in
  let ds = Lint_flow.run net in
  Alcotest.(check bool) "flow finds the leak" true
    (has_check "cross-protocol-leak" ds);
  (* the per-device linter is silent on this shape *)
  let per_device = Lint.run ~compression:false net in
  Alcotest.(check bool) "per-device check cannot see it" false
    (has_check "redistribution-cycle" per_device);
  (* diagnostics point at the re-injector *)
  let d =
    List.find (fun d -> String.equal d.Diag.check "cross-protocol-leak") ds
  in
  Alcotest.(check (option string)) "located at b" (Some "b") d.Diag.loc.Diag.router

let test_leak_facts () =
  let net = parse_net leak_conf in
  let ec = List.hd (Ecs.compute net) in
  let t = Flow.analyze net ec in
  let g = net.Device.graph in
  let id name = Option.get (Graph.find_by_name g name) in
  (* the pure-BGP core router never appears in the OSPF plane, and the
     OSPF-only leaf never appears in the BGP plane *)
  Alcotest.(check bool) "m has no ospf fact" true
    (Option.is_none (Flow.fact t (id "m") Flow.Ospf));
  Alcotest.(check bool) "d has no bgp fact" true
    (Option.is_none (Flow.fact t (id "d") Flow.Bgp));
  (* the leaked route at b carries the full story in its taint *)
  match Flow.fact t (id "b") Flow.Ospf with
  | Some (Flow.Facts { provs = pr :: _; _ }) ->
    Alcotest.(check bool) "ospf taint" true (Flow.has pr.Flow.taint Flow.t_ospf);
    Alcotest.(check bool) "ebgp taint" true (Flow.has pr.Flow.taint Flow.t_ebgp);
    Alcotest.(check bool) "redist taint" true
      (Flow.has pr.Flow.taint Flow.t_redist);
    Alcotest.(check int) "exported at a" (id "a") pr.Flow.via_redist
  | _ -> Alcotest.fail "no fact at b's OSPF plane"

let test_transit_detected () =
  let net = parse_net transit_conf in
  let ds = Lint_flow.run net in
  Alcotest.(check int) "both provider sessions flagged" 2
    (List.length
       (List.filter
          (fun d -> String.equal d.Diag.check "unintended-transit")
          ds))

let transit_conf_unannotated =
  "topology\n  node orig\n  node p1\n  node p2\n  node c\n\
  \  link orig p1\n  link p1 c\n  link c p2\n\n\
   router orig\n  bgp neighbor p1\n  originate 10.99.0.0/24\n\n\
   router p1\n  bgp neighbor orig\n  bgp neighbor c\n\n\
   router c\n  bgp neighbor p1\n  bgp neighbor p2\n\n\
   router p2\n  bgp neighbor c\n"

let test_transit_needs_annotations () =
  (* the same valley with no relation annotations is silent: Rel_unknown
     sessions opt out of the transit check *)
  let net = parse_net transit_conf_unannotated in
  Alcotest.(check bool) "unannotated network is silent" false
    (has_check "unintended-transit" (Lint_flow.run net))

let test_clean_networks_silent () =
  List.iter
    (fun net ->
      let ds = Lint_flow.run net in
      Alcotest.(check (list string)) "no flow findings" [] (check_names ds))
    [
      Synthesis.ring_bgp ~n:5;
      Synthesis.fattree_shortest_path (Generators.fattree ~k:4);
    ]

let test_flow_budget_degrades () =
  let net = parse_net leak_conf in
  let ec = List.hd (Ecs.compute net) in
  let t = Flow.analyze ~budget:(Budget.create ~max_ticks:2 ()) net ec in
  Alcotest.(check bool) "degraded" true (Option.is_some (Flow.degraded t));
  (* degraded facts are Unknown, and the checks refuse to report from them *)
  Alcotest.(check bool) "facts are unknown" true
    (match Flow.fact t 0 Flow.Bgp with
    | Some Flow.Unknown -> true
    | _ -> false);
  let ds = Lint_flow.run ~budget:(Budget.create ~max_ticks:2 ()) net in
  Alcotest.(check bool) "leak suppressed" false
    (has_check "cross-protocol-leak" ds);
  Alcotest.(check bool) "degradation reported" true (has_check "flow-degraded" ds)

(* --- relation annotations round-trip ---------------------------------- *)

let test_relation_roundtrip () =
  let net = parse_net transit_conf in
  let reparsed = parse_net (Config_text.print net) in
  let g = reparsed.Device.graph in
  let id name = Option.get (Graph.find_by_name g name) in
  let rel_of r w =
    match Device.bgp_neighbor_config reparsed.Device.routers.(id r) (id w) with
    | Some nb -> nb.Device.rel
    | None -> Alcotest.failf "no session %s -> %s after round-trip" r w
  in
  Alcotest.(check bool) "c sees p1 as provider" true
    (Device.relation_equal (rel_of "c" "p1") Device.Provider);
  Alcotest.(check bool) "p1 sees c as customer" true
    (Device.relation_equal (rel_of "p1" "c") Device.Customer);
  Alcotest.(check bool) "unannotated stays unknown" true
    (Device.relation_equal (rel_of "orig" "p1") Device.Rel_unknown)

(* --- Cond_bdd community-encoding edge cases --------------------------- *)

let comm k = (200 * 65536) + k

let test_empty_community_set () =
  (* [match community {}] matches nothing: its guard is bot, so a clause
     carrying it can never fire and everything falls through *)
  let rm =
    [
      {
        Route_map.verdict = Route_map.Deny;
        conds = [ Route_map.Match_community [] ];
        actions = [];
      };
      { Route_map.verdict = Route_map.Permit; conds = []; actions = [] };
    ]
  in
  let u = Cond_bdd.of_route_map rm in
  Alcotest.(check bool) "empty set is bot" true
    (Bdd.is_bot (Cond_bdd.cond u (Route_map.Match_community [])));
  Alcotest.(check bool) "route-map still permits" true
    (Flow.rm_can_permit u (Some rm) ~dest:(Prefix.of_string "10.0.0.0/24"))

let test_many_communities () =
  (* 70 distinct communities: variable indices past 63 must stay distinct
     (no silent truncation to a word-sized set) *)
  let cs = List.init 70 comm in
  let u = Cond_bdd.create ~comms:cs in
  let rm =
    List.map
      (fun c ->
        {
          Route_map.verdict = Route_map.Permit;
          conds = [ Route_map.Match_community [ c ] ];
          actions = [];
        })
      cs
  in
  Alcotest.(check (list int)) "70 single-community clauses all live" []
    (Cond_bdd.shadowed u rm);
  let a = Cond_bdd.comm u (comm 68) and b = Cond_bdd.comm u (comm 69) in
  Alcotest.(check bool) "high-index communities are distinct" false
    (Bdd.equal a b)

let test_community_on_deny () =
  (* a community matched only by a deny clause still counts as matched:
     the deny can only fire if the community can arrive *)
  let dest = Prefix.of_string "10.0.0.0/24" in
  let rm =
    [
      {
        Route_map.verdict = Route_map.Deny;
        conds = [ Route_map.Match_community [ comm 1 ] ];
        actions = [];
      };
      { Route_map.verdict = Route_map.Permit; conds = []; actions = [] };
    ]
  in
  let u = Cond_bdd.create ~comms:[ comm 1 ] in
  Alcotest.(check (list int)) "deny clause match is visible" [ comm 1 ]
    (Flow.reachable_matched u rm ~dest);
  Alcotest.(check (list int)) "deny clause adds nothing" []
    (Flow.reachable_added u rm ~dest)

(* --- QCheck: over-approximation of the simulator ----------------------- *)

let gen_network : Device.network QCheck.arbitrary =
  QCheck.make ~print:Config_text.print
    QCheck.Gen.(
      oneof
        [
          map (fun n -> Synthesis.ring_bgp ~n) (int_range 3 8);
          map
            (fun k -> Synthesis.fattree_shortest_path (Generators.fattree ~k))
            (return 4);
          map2
            (fun n seed -> Synthesis.random_network ~n ~seed)
            (int_range 4 10) (int_range 0 1000);
          map2
            (fun n seed -> Synthesis.random_multi_network ~n ~seed)
            (int_range 4 10) (int_range 0 1000);
        ])

let take k l = List.filteri (fun i _ -> i < k) l

(* Whenever the stable solution delivers a route to a router, the flow
   fact at that router admits it: matching origin, community superset, and
   a populated OSPF plane when OSPF delivered. No false "unreachable
   origin" verdicts. *)
let prop_overapproximates =
  QCheck.Test.make ~name:"flow facts over-approximate the solution" ~count:60
    gen_network (fun net ->
      let n = Graph.n_nodes net.Device.graph in
      List.for_all
        (fun (ec : Ecs.ec) ->
          match ec.Ecs.ec_origins with
          | [ dest ] -> (
            let t = Flow.analyze net ec in
            let srp =
              Compile.multi_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix
            in
            match Solver.solve srp with
            | Error _ -> true (* divergence: nothing to compare against *)
            | Ok (sol, _) ->
              List.for_all
                (fun u ->
                  match Solution.label sol u with
                  | None -> true
                  | Some (a : Multi.attr) ->
                    let bgp_ok =
                      match a.Multi.bgp with
                      | None -> true
                      | Some b -> (
                        match Flow.fact t u Flow.Bgp with
                        | None -> false
                        | Some Flow.Unknown -> true
                        | Some (Flow.Facts { provs; comms }) ->
                          List.exists
                            (fun (pr : Flow.prov) -> Int.equal pr.Flow.org dest)
                            provs
                          && List.for_all
                               (fun c -> List.exists (Int.equal c) comms)
                               b.Multi.battr.Bgp.comms)
                    in
                    let ospf_ok =
                      match a.Multi.ospf with
                      | None -> true
                      | Some _ -> (
                        match Flow.fact t u Flow.Ospf with
                        | None -> false
                        | Some _ -> true)
                    in
                    bgp_ok && ospf_ok)
                (List.init n Fun.id))
          | _ -> true (* anycast classes are not compiled *))
        (take 3 (Ecs.compute net)))

(* --- QCheck: community-provenance never flags a delivered community ---- *)

let comm_pool = [ comm 11; comm 12; comm 13 ]

(* Rings decorated with random community policy: exports randomly add a
   pool community, imports randomly match one (match-only, so the arriving
   route a flagged import matched against is exactly the simulated one). *)
let gen_comm_network : Device.network QCheck.arbitrary =
  QCheck.make ~print:Config_text.print
    QCheck.Gen.(
      let rm_add c =
        Some
          [
            {
              Route_map.verdict = Route_map.Permit;
              conds = [];
              actions = [ Route_map.Add_community c ];
            };
          ]
      in
      let rm_match c =
        Some
          [
            {
              Route_map.verdict = Route_map.Permit;
              conds = [ Route_map.Match_community [ c ] ];
              actions = [];
            };
            { Route_map.verdict = Route_map.Permit; conds = []; actions = [] };
          ]
      in
      let pick_comm = oneofl comm_pool in
      let gen_export =
        oneof [ return None; map rm_add pick_comm ]
      and gen_import =
        oneof [ return None; map rm_match pick_comm ]
      in
      int_range 3 7 >>= fun n ->
      let net = Synthesis.ring_bgp ~n in
      let decorate r =
        let nbrs = r.Device.bgp_neighbors in
        List.fold_right
          (fun (w, nb) acc_gen ->
            acc_gen >>= fun acc ->
            gen_import >>= fun import_rm ->
            gen_export >>= fun export_rm ->
            return
              ((w, { nb with Device.import_rm; export_rm }) :: acc))
          nbrs (return [])
        >>= fun bgp_neighbors -> return { r with Device.bgp_neighbors }
      in
      let rec decorate_all i acc =
        if i < 0 then return acc
        else
          decorate net.Device.routers.(i) >>= fun r ->
          decorate_all (i - 1) (r :: acc)
      in
      decorate_all (Array.length net.Device.routers - 1) [] >>= fun rs ->
      return { net with Device.routers = Array.of_list rs })

let prop_no_delivered_community_flagged =
  QCheck.Test.make
    ~name:"community-provenance never flags a delivered community" ~count:60
    gen_comm_network (fun net ->
      let ds = Lint_flow.run net in
      let flagged =
        List.filter
          (fun d -> String.equal d.Diag.check "community-provenance")
          ds
      in
      match flagged with
      | [] -> true
      | flagged ->
      let g = net.Device.graph in
      let id name = Option.get (Graph.find_by_name g name) in
      let sols =
        List.filter_map
          (fun (ec : Ecs.ec) ->
            match ec.Ecs.ec_origins with
            | [ dest ] -> (
              match
                Solver.solve
                  (Compile.multi_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix)
              with
              | Ok (sol, _) -> Some sol
              | Error _ -> None)
            | _ -> None)
          (Ecs.compute net)
      in
      List.for_all
        (fun d ->
          let r = id (Option.get d.Diag.loc.Diag.router) in
          let w = id (Option.get d.Diag.loc.Diag.neighbor) in
          (* the message names the direction and the community *)
          let is_import = contains d.Diag.message "import" in
          let c =
            List.find
              (fun c ->
                contains d.Diag.message (Config_text.community_to_string c))
              comm_pool
          in
          List.for_all
            (fun sol ->
              if is_import then
                (* the flagged import matched the arriving route: imports
                   in this generator are match-only, so the simulated
                   arriving attribute is exactly what the match saw *)
                List.for_all
                  (fun ((_, v), (a : Multi.attr)) ->
                    (not (Int.equal v w))
                    ||
                    match a.Multi.bgp with
                    | None -> true
                    | Some b ->
                      not (List.exists (Int.equal c) b.Multi.battr.Bgp.comms))
                  (Solution.choices sol r)
              else
                (* the flagged export matched r's own chosen route *)
                match Solution.label sol r with
                | Some { Multi.bgp = Some b; _ } ->
                  not (List.exists (Int.equal c) b.Multi.battr.Bgp.comms)
                | _ -> true)
            sols)
        flagged)

(* ---------------------------------------------------------------------- *)

let () =
  Alcotest.run "flow"
    [
      ( "dataflow",
        [
          Alcotest.test_case "chain" `Quick test_dataflow_chain;
          Alcotest.test_case "unreachable" `Quick test_dataflow_unreachable;
          Alcotest.test_case "widening" `Quick test_dataflow_widen;
          Alcotest.test_case "budget degrades to top" `Quick
            test_dataflow_budget;
        ] );
      ( "checks",
        [
          Alcotest.test_case "multi-hop leak detected" `Quick
            test_leak_detected;
          Alcotest.test_case "leak facts" `Quick test_leak_facts;
          Alcotest.test_case "transit detected" `Quick test_transit_detected;
          Alcotest.test_case "transit needs annotations" `Quick
            test_transit_needs_annotations;
          Alcotest.test_case "clean networks silent" `Quick
            test_clean_networks_silent;
          Alcotest.test_case "budget degrades" `Quick test_flow_budget_degrades;
        ] );
      ( "relations",
        [ Alcotest.test_case "round-trip" `Quick test_relation_roundtrip ] );
      ( "cond-bdd",
        [
          Alcotest.test_case "empty community set" `Quick
            test_empty_community_set;
          Alcotest.test_case "70 communities" `Quick test_many_communities;
          Alcotest.test_case "community on deny" `Quick test_community_on_deny;
        ] );
      ( "fuzz",
        List.map QCheck_alcotest.to_alcotest
          [ prop_overapproximates; prop_no_delivered_community_flagged ] );
    ]

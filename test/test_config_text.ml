(* The textual configuration format: parsing, printing, round-trips. *)

let nets_equal (a : Device.network) (b : Device.network) =
  Graph.n_nodes a.Device.graph = Graph.n_nodes b.Device.graph
  && Graph.edges a.Device.graph = Graph.edges b.Device.graph
  && Array.for_all2
       (fun (ra : Device.router) (rb : Device.router) ->
         ra.Device.name = rb.Device.name
         && ra.Device.bgp_neighbors = rb.Device.bgp_neighbors
         && ra.Device.ospf_links = rb.Device.ospf_links
         && ra.Device.ospf_area = rb.Device.ospf_area
         && ra.Device.static_routes = rb.Device.static_routes
         && ra.Device.acl_out = rb.Device.acl_out
         && ra.Device.originated = rb.Device.originated
         && ra.Device.redistribute = rb.Device.redistribute)
       a.Device.routers b.Device.routers

let roundtrip name net =
  let text = Config_text.print net in
  match Config_text.parse text with
  | Error e -> Alcotest.failf "%s: parse error: %s" name e
  | Ok net' ->
    Alcotest.(check bool) (name ^ ": round-trip") true (nets_equal net net')

let test_roundtrip_synthetics () =
  roundtrip "fattree" (Synthesis.fattree_shortest_path (Generators.fattree ~k:4));
  roundtrip "prefer-bottom"
    (Synthesis.fattree_prefer_bottom (Generators.fattree ~k:4));
  roundtrip "ring" (Synthesis.ring_bgp ~n:8);
  roundtrip "datacenter" (Synthesis.datacenter ()).Synthesis.net;
  roundtrip "wan" (Synthesis.wan ()).Synthesis.net

let test_roundtrip_emitted_abstract () =
  let net = Synthesis.fattree_shortest_path (Generators.fattree ~k:6) in
  let ec = List.hd (Ecs.compute net) in
  let t = (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction in
  roundtrip "emitted abstract configs" (Abstract_config.emit t)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"print/parse round-trip on random networks" ~count:60
    QCheck.(pair (int_range 2 20) (int_range 0 1000))
    (fun (n, seed) ->
      let net = Synthesis.random_network ~n ~seed in
      match Config_text.parse (Config_text.print net) with
      | Ok net' -> nets_equal net net'
      | Error _ -> false)

let test_parse_small () =
  let text =
    {|# a two-router network
topology
  node a
  node b
  link a b

route-map TAG
  10 permit
    match community 65001:1 2
    set local-pref 350
    set community add 65001:3

router a
  bgp neighbor b import TAG
  originate 10.0.0.0/24

router b
  ospf area 2
  bgp neighbor a ibgp
  static 10.1.0.0/16 via a
  acl out a
    permit 10.0.0.0/8
    deny 0.0.0.0/0
  redistribute ospf-into-bgp
|}
  in
  match Config_text.parse text with
  | Error e -> Alcotest.fail e
  | Ok net ->
    Alcotest.(check int) "nodes" 2 (Graph.n_nodes net.Device.graph);
    let a = Option.get (Graph.find_by_name net.Device.graph "a") in
    let b = Option.get (Graph.find_by_name net.Device.graph "b") in
    let ra = net.Device.routers.(a) and rb = net.Device.routers.(b) in
    (match Device.bgp_neighbor_config ra b with
    | Some nb -> (
      Alcotest.(check bool) "not ibgp" false nb.Device.ibgp;
      match nb.Device.import_rm with
      | Some [ cl ] ->
        Alcotest.(check bool) "community parsed" true
          (cl.Route_map.conds
          = [ Route_map.Match_community [ (65001 lsl 16) lor 1; 2 ] ]);
        Alcotest.(check bool) "actions parsed" true
          (cl.Route_map.actions
          = [
              Route_map.Set_local_pref 350;
              Route_map.Add_community ((65001 lsl 16) lor 3);
            ])
      | _ -> Alcotest.fail "bad route-map")
    | None -> Alcotest.fail "missing neighbor");
    Alcotest.(check int) "ospf area" 2 rb.Device.ospf_area;
    Alcotest.(check bool) "ibgp" true
      (match Device.bgp_neighbor_config rb a with
      | Some nb -> nb.Device.ibgp
      | None -> false);
    Alcotest.(check int) "static" 1 (List.length rb.Device.static_routes);
    Alcotest.(check int) "acl rules" 2
      (match Device.acl_for rb a with Some acl -> List.length acl | None -> 0);
    Alcotest.(check (list bool)) "redistribute" [ true ]
      (List.map (fun r -> r = Multi.Ospf_into_bgp) rb.Device.redistribute)

let test_parse_errors () =
  let cases =
    [
      ("stray content", "  node a\n");
      ("unknown node in link", "topology\n  node a\n  link a b\n");
      ("unknown route-map", "topology\n  node a\nrouter a\n  bgp neighbor a import NOPE\n");
      ("bad prefix", "topology\n  node a\n  node b\n  link a b\nrouter a\n  originate 10.0.0.300/24\n");
      ("router not a node", "topology\n  node a\nrouter b\n");
      ("self loop", "topology\n  node a\n  link a a\n");
    ]
  in
  List.iter
    (fun (name, text) ->
      match Config_text.parse text with
      | Ok _ -> Alcotest.failf "%s: expected a parse error" name
      | Error _ -> ())
    cases

let test_community_syntax () =
  Alcotest.(check (option int)) "plain" (Some 7)
    (Config_text.community_of_string "7");
  Alcotest.(check (option int)) "pair" (Some ((65001 lsl 16) lor 3))
    (Config_text.community_of_string "65001:3");
  Alcotest.(check (option int)) "bad" None
    (Config_text.community_of_string "65001:");
  Alcotest.(check string) "print pair" "65001:3"
    (Config_text.community_to_string ((65001 lsl 16) lor 3));
  Alcotest.(check string) "print plain" "42" (Config_text.community_to_string 42)

let test_parsed_network_compresses () =
  (* end-to-end: print a network, parse it back, compress the parse *)
  let net = Synthesis.fattree_shortest_path (Generators.fattree ~k:4) in
  match Config_text.parse (Config_text.print net) with
  | Error e -> Alcotest.fail e
  | Ok net' ->
    let ec = List.hd (Ecs.compute net') in
    let r = Bonsai_api.compress_ec_exn net' ec in
    Alcotest.(check int) "still 6 nodes" 6
      (Abstraction.n_abstract r.Bonsai_api.abstraction)

let test_save_load_file () =
  let net = Synthesis.random_network ~n:8 ~seed:5 in
  let path = Filename.temp_file "bonsai" ".conf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Config_text.save ~path net;
      match Config_text.load path with
      | Ok net' -> Alcotest.(check bool) "file round-trip" true (nets_equal net net')
      | Error e -> Alcotest.fail e);
  match Config_text.load "/nonexistent/bonsai.conf" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for a missing file"

(* --- IOS-flavored rendering ------------------------------------------- *)

let contains hay needle = Astring_contains.contains hay needle

let test_ios_render () =
  let net = Synthesis.fattree_shortest_path (Generators.fattree ~k:4) in
  let cfg = Ios_print.router_config net 4 in
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" s) true
        (contains cfg s))
    [
      "hostname agg0_0";
      "router bgp 65004";
      "neighbor 10.254.0.1 remote-as 65000";
      "route-map RM_IN_0 permit 10";
      "ip prefix-list RM_IN_0_P10_0 seq 5 permit 10.0.0.0/8";
      "interface Ethernet0";
    ]

let test_ios_features () =
  let dc = (Synthesis.datacenter ()).Synthesis.net in
  let leaf = Option.get (Graph.find_by_name dc.Device.graph "leaf0_0") in
  let cfg = Ios_print.router_config dc leaf in
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" s) true
        (contains cfg s))
    [
      "ip route 10.100.0.0 255.255.255.0"; (* the static-route variant *)
      "ip access-list extended ACL_E0";
      "set community 1000 additive"; (* the unmatched tag *)
      "interface Loopback0";
    ];
  let wan = (Synthesis.wan ()).Synthesis.net in
  let agg = Option.get (Graph.find_by_name wan.Device.graph "pop0_r0") in
  let cfg = Ios_print.router_config wan agg in
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "wan contains %S" s) true
        (contains cfg s))
    [ "router ospf 1"; "redistribute ospf 1"; "redistribute bgp"; "ip ospf cost" ]

let test_ios_scale () =
  let dc = (Synthesis.datacenter ()).Synthesis.net in
  Alcotest.(check bool) "datacenter tens of thousands of lines" true
    (Ios_print.line_count dc > 20000)

let () =
  Alcotest.run "config-text"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "synthetics" `Quick test_roundtrip_synthetics;
          Alcotest.test_case "emitted abstract" `Quick
            test_roundtrip_emitted_abstract;
        ] );
      ( "parse",
        [
          Alcotest.test_case "small example" `Quick test_parse_small;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "community syntax" `Quick test_community_syntax;
          Alcotest.test_case "compresses" `Quick test_parsed_network_compresses;
          Alcotest.test_case "save/load file" `Quick test_save_load_file;
        ] );
      ( "ios",
        [
          Alcotest.test_case "rendering" `Quick test_ios_render;
          Alcotest.test_case "features" `Quick test_ios_features;
          Alcotest.test_case "scale" `Quick test_ios_scale;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip_random ] );
    ]

(* Counterexample-guided abstraction repair (lib/repair): the hardened
   abstraction is fault-sound, the loop is monotone in its pin set, and
   exhaustion degrades to the identity abstraction instead of ever
   returning an unsound result. *)

let fattree4 () = Synthesis.fattree_shortest_path (Generators.fattree ~k:4)

let first_ec net = List.hd (Ecs.compute net)

(* Re-discharge the guarantee from scratch: no swept scenario
   distinguishes the hardened abstraction from the concrete network. *)
let recheck (net : Device.network) (ec : Ecs.ec) (t : Abstraction.t) ~k =
  Soundness.first_break t
    ~concrete:
      (Compile.bgp_srp net ~dest:(Ecs.single_origin ec)
         ~dest_prefix:ec.Ecs.ec_prefix)
    ~abstract_:(Abstraction.bgp_srp t)
    (Scenario.enumerate ~k net.Device.graph)

(* --- the acceptance case: fattree:4 under single failures ------------- *)

let test_fattree_repaired () =
  let net = fattree4 () in
  let ec = first_ec net in
  (* precondition: the plain abstraction is fault-unsound (paper §9) *)
  let plain = (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction in
  Alcotest.(check bool)
    "plain abstraction breaks" true
    (recheck net ec plain ~k:1 <> None);
  let r = Repair.harden_exn ~k:1 net ec in
  Alcotest.(check bool) "sound" true r.Repair.sound;
  Alcotest.(check bool)
    "no fallback" true
    (r.Repair.fallback = Bonsai_api.No_fallback);
  Alcotest.(check bool)
    "repaired within the default rounds" true
    (List.length r.Repair.rounds <= 8 + 1);
  Alcotest.(check bool)
    "at least one counterexample consumed" true
    (r.Repair.n_counterexamples >= 1);
  Alcotest.(check bool) "pins were added" true (r.Repair.pins <> []);
  Alcotest.(check bool)
    "not flagged degraded" false
    r.Repair.result.Bonsai_api.degraded;
  (* the final sweep of the loop used the same enumeration, but trust
     nothing: re-build both SRPs and sweep again *)
  Alcotest.(check bool)
    "first_break = None on the hardened abstraction" true
    (recheck net ec r.Repair.result.Bonsai_api.abstraction ~k:1 = None)

let test_round_log_shape () =
  let net = fattree4 () in
  let ec = first_ec net in
  let r = Repair.harden_exn ~k:1 net ec in
  let rounds = r.Repair.rounds in
  Alcotest.(check (list int))
    "rounds are numbered chronologically"
    (List.init (List.length rounds) (fun i -> i + 1))
    (List.map (fun rl -> rl.Repair.rl_round) rounds);
  (* every round but the last carries a counterexample; the last is the
     clean sweep *)
  let rec split_last = function
    | [] -> Alcotest.fail "no rounds logged"
    | [ last ] -> ([], last)
    | x :: rest ->
      let init, last = split_last rest in
      (x :: init, last)
  in
  let failing, last = split_last rounds in
  List.iter
    (fun rl ->
      Alcotest.(check bool)
        "failing round has a counterexample" true
        (rl.Repair.rl_counterexample <> None);
      Alcotest.(check bool)
        "failing round has mismatches" true
        (rl.Repair.rl_mismatches <> []);
      Alcotest.(check bool)
        "failing round pinned something" true
        (rl.Repair.rl_new_pins <> []))
    failing;
  Alcotest.(check bool)
    "last round is the clean sweep" true
    (last.Repair.rl_counterexample = None);
  Alcotest.(check int)
    "clean sweep covered the whole k=1 space"
    (Scenario.count ~k:1 net.Device.graph)
    last.Repair.rl_scenarios

(* --- termination: pins grow monotonically, bounded by node count ------ *)

let test_pins_monotone () =
  let net = fattree4 () in
  let ec = first_ec net in
  let n = Graph.n_nodes net.Device.graph in
  let r = Repair.harden_exn ~k:1 net ec in
  let totals = List.map (fun rl -> rl.Repair.rl_total_pins) r.Repair.rounds in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative pin count never shrinks" true
    (increasing totals);
  List.iter
    (fun rl ->
      Alcotest.(check bool)
        "total pins never exceed the node count" true
        (rl.Repair.rl_total_pins <= n))
    r.Repair.rounds;
  (* every failing round makes progress: new pins are nonempty and
     disjoint from everything pinned before *)
  let seen = ref [] in
  List.iter
    (fun rl ->
      if rl.Repair.rl_counterexample <> None then begin
        Alcotest.(check bool)
          "failing round adds at least one pin" true
          (rl.Repair.rl_new_pins <> []);
        Alcotest.(check bool)
          "new pins were not already pinned" true
          (List.for_all
             (fun u -> not (List.mem u !seen))
             rl.Repair.rl_new_pins);
        seen := rl.Repair.rl_new_pins @ !seen
      end)
    r.Repair.rounds;
  Alcotest.(check int) "final pin set is the union of the rounds"
    (List.length !seen)
    (List.length r.Repair.pins);
  Alcotest.(check bool) "pin set within the node set" true
    (List.for_all (fun u -> u >= 0 && u < n) r.Repair.pins)

(* --- graceful degradation ---------------------------------------------- *)

let test_budget_fallback_is_identity () =
  let net = fattree4 () in
  let ec = first_ec net in
  let r = Repair.harden_exn ~k:1 ~budget:(Budget.create ~max_ticks:5 ()) net ec in
  (match r.Repair.fallback with
  | Bonsai_api.Budget_fallback _ -> ()
  | _ -> Alcotest.fail "expected Budget_fallback");
  Alcotest.(check bool) "fallback is sound" true r.Repair.sound;
  Alcotest.(check bool) "flagged degraded" true
    r.Repair.result.Bonsai_api.degraded;
  let t = r.Repair.result.Bonsai_api.abstraction in
  Alcotest.(check bool) "identity abstraction" true (Abstraction.is_identity t);
  let rn, re = Repair.ratio r in
  Alcotest.(check (float 1e-9)) "node ratio 1.0" 1.0 rn;
  Alcotest.(check (float 1e-9)) "link ratio 1.0" 1.0 re

let test_rounds_zero_diagnoses () =
  (* repair disabled: the sweep reports the break and keeps the (unsound)
     abstraction for diagnosis — the only way [sound = false] escapes *)
  let net = fattree4 () in
  let ec = first_ec net in
  let r = Repair.harden_exn ~k:1 ~rounds:0 net ec in
  Alcotest.(check bool) "unsound" false r.Repair.sound;
  Alcotest.(check bool) "no fallback (diagnosis mode)" true
    (r.Repair.fallback = Bonsai_api.No_fallback);
  Alcotest.(check bool) "pins untouched" true (r.Repair.pins = []);
  Alcotest.(check int) "one sweep logged" 1 (List.length r.Repair.rounds);
  let rl = List.hd r.Repair.rounds in
  Alcotest.(check bool) "counterexample reported" true
    (rl.Repair.rl_counterexample <> None);
  (* the counterexample is 1-minimal: k=1 scenarios already are *)
  (match rl.Repair.rl_counterexample with
  | Some sc -> Alcotest.(check int) "minimal" 1 (Scenario.size sc)
  | None -> ())

let test_k_zero_trivially_sound () =
  (* k=0 sweeps only the intact topology, where the abstraction is sound
     by construction: one clean round, no pins *)
  let net = fattree4 () in
  let ec = first_ec net in
  let r = Repair.harden_exn ~k:0 net ec in
  Alcotest.(check bool) "sound" true r.Repair.sound;
  Alcotest.(check int) "single round" 1 (List.length r.Repair.rounds);
  Alcotest.(check bool) "no pins" true (r.Repair.pins = []);
  Alcotest.(check bool)
    "compression kept" true
    (Abstraction.n_abstract r.Repair.result.Bonsai_api.abstraction
    < Graph.n_nodes net.Device.graph)

let test_invalid_args () =
  let net = fattree4 () in
  let ec = first_ec net in
  (match Repair.harden ~k:(-1) net ec with
  | Error (Bonsai_error.Compile_error _) -> ()
  | _ -> Alcotest.fail "negative k must be a Compile_error");
  match Repair.harden ~rounds:(-1) net ec with
  | Error (Bonsai_error.Compile_error _) -> ()
  | _ -> Alcotest.fail "negative rounds must be a Compile_error"

(* --- the registered Bonsai_api entry point ----------------------------- *)

let test_api_registration () =
  (* this test binary links repro_repair, so the forward reference must
     be filled in *)
  let net = fattree4 () in
  let ec = first_ec net in
  match Bonsai_api.compress_fault_sound ~k:1 net ec with
  | Error e -> Alcotest.failf "unexpected error: %a" Bonsai_error.pp e
  | Ok h ->
    Alcotest.(check bool) "sound" true h.Bonsai_api.h_sound;
    Alcotest.(check bool) "rounds counted" true (h.Bonsai_api.h_rounds >= 2);
    Alcotest.(check bool) "pins reported" true (h.Bonsai_api.h_pins <> []);
    Alcotest.(check bool)
      "counterexamples reported" true
      (h.Bonsai_api.h_counterexamples >= 1);
    let rn, _ = Bonsai_api.hardened_ratio h in
    Alcotest.(check bool) "ratio computed" true (rn >= 1.0)

(* --- properties --------------------------------------------------------- *)

(* Hardened output is fault-sound on the swept space, whatever the
   topology: rings (redundant — plain compression is typically unsound
   under k=1) and random graphs of mixed redundancy. *)
let qcheck_hardened_is_sound =
  QCheck.Test.make ~name:"harden: first_break = None on the swept space"
    ~count:8
    QCheck.(pair (int_range 4 8) (int_range 0 99))
    (fun (n, seed) ->
      let net =
        if seed mod 2 = 0 then Synthesis.ring_bgp ~n
        else Synthesis.random_network ~n ~seed
      in
      let ec = first_ec net in
      let r = Repair.harden_exn ~k:1 net ec in
      r.Repair.sound
      && recheck net ec r.Repair.result.Bonsai_api.abstraction ~k:1 = None)

let qcheck_pins_bounded =
  QCheck.Test.make ~name:"harden: pins grow monotonically, never past n"
    ~count:8
    QCheck.(int_range 4 8)
    (fun n ->
      let net = Synthesis.ring_bgp ~n in
      let r = Repair.harden_exn ~k:1 net (first_ec net) in
      let totals =
        List.map (fun rl -> rl.Repair.rl_total_pins) r.Repair.rounds
      in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a <= b && increasing rest
        | _ -> true
      in
      increasing totals
      && List.for_all (fun t -> t <= n) totals
      && List.length r.Repair.pins <= n)

let () =
  Alcotest.run "repair"
    [
      ( "fattree",
        [
          Alcotest.test_case "repaired and fault-sound" `Quick
            test_fattree_repaired;
          Alcotest.test_case "round log shape" `Quick test_round_log_shape;
        ] );
      ( "termination",
        [
          Alcotest.test_case "pins monotone and bounded" `Quick
            test_pins_monotone;
          QCheck_alcotest.to_alcotest qcheck_pins_bounded;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "budget fallback is the identity" `Quick
            test_budget_fallback_is_identity;
          Alcotest.test_case "rounds=0 diagnoses" `Quick
            test_rounds_zero_diagnoses;
          Alcotest.test_case "k=0 is trivially sound" `Quick
            test_k_zero_trivially_sound;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
        ] );
      ( "api",
        [
          Alcotest.test_case "compress_fault_sound registered" `Quick
            test_api_registration;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest qcheck_hardened_is_sound ]);
    ]

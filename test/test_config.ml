(* Configuration language, BDD policy encoding, destination ECs, and the
   synthetic evaluation networks. *)

let dest = Prefix.of_string "10.0.1.0/24"

let rm_set_lp : Route_map.t =
  [
    {
      verdict = Permit;
      conds = [ Match_community [ 1; 2 ] ];
      actions = [ Add_community 3; Set_local_pref 350 ];
    };
    { verdict = Permit; conds = []; actions = [] };
  ]

(* --- route-map evaluation ------------------------------------------- *)

let test_eval_first_match_wins () =
  let a = Bgp.add_comm 1 Bgp.init in
  (match Route_map.eval rm_set_lp ~dest a with
  | Some r ->
    Alcotest.(check int) "lp" 350 r.Bgp.lp;
    Alcotest.(check bool) "community added" true (Bgp.has_comm 3 r)
  | None -> Alcotest.fail "dropped");
  match Route_map.eval rm_set_lp ~dest Bgp.init with
  | Some r -> Alcotest.(check int) "fallthrough keeps lp" 100 r.Bgp.lp
  | None -> Alcotest.fail "dropped"

let test_eval_implicit_deny () =
  let rm : Route_map.t =
    [ { verdict = Permit; conds = [ Match_community [ 7 ] ]; actions = [] } ]
  in
  Alcotest.(check bool) "non-matching denied" true
    (Route_map.eval rm ~dest Bgp.init = None)

let test_eval_deny_clause () =
  let rm : Route_map.t =
    [
      { verdict = Deny; conds = [ Match_community [ 5 ] ]; actions = [] };
      { verdict = Permit; conds = []; actions = [] };
    ]
  in
  Alcotest.(check bool) "deny matches" true
    (Route_map.eval rm ~dest (Bgp.add_comm 5 Bgp.init) = None);
  Alcotest.(check bool) "others pass" true
    (Route_map.eval rm ~dest Bgp.init <> None)

let test_eval_prefix_match () =
  let rm : Route_map.t =
    [
      {
        verdict = Permit;
        conds = [ Match_prefix [ Prefix.of_string "10.0.0.0/8" ] ];
        actions = [];
      };
    ]
  in
  Alcotest.(check bool) "inside" true (Route_map.eval rm ~dest Bgp.init <> None);
  let outside = Prefix.of_string "192.168.0.0/24" in
  Alcotest.(check bool) "outside" true
    (Route_map.eval rm ~dest:outside Bgp.init = None)

let test_relevant_strips_prefix_conds () =
  let rm : Route_map.t =
    [
      {
        verdict = Permit;
        conds = [ Match_prefix [ Prefix.of_string "10.0.0.0/8" ] ];
        actions = [ Set_local_pref 200 ];
      };
      {
        verdict = Permit;
        conds = [ Match_prefix [ Prefix.of_string "192.168.0.0/16" ] ];
        actions = [ Set_local_pref 300 ];
      };
    ]
  in
  let r = Route_map.relevant rm ~dest in
  Alcotest.(check int) "one clause survives" 1 (List.length r);
  Alcotest.(check (list int)) "reachable lps" [ 200 ]
    (Route_map.local_prefs rm ~dest)

let test_community_harvest () =
  Alcotest.(check (list int)) "matched" [ 1; 2 ]
    (Route_map.communities_matched rm_set_lp);
  Alcotest.(check (list int)) "set" [ 3 ] (Route_map.communities_set rm_set_lp)

(* --- ACLs ------------------------------------------------------------ *)

let test_acl () =
  let acl : Acl.t =
    [
      { permit = false; prefix = Prefix.of_string "10.0.1.0/24" };
      { permit = true; prefix = Prefix.of_string "10.0.0.0/8" };
    ]
  in
  Alcotest.(check bool) "denied" false (Acl.permits (Some acl) dest);
  Alcotest.(check bool) "permitted" true
    (Acl.permits (Some acl) (Prefix.of_string "10.0.2.0/24"));
  Alcotest.(check bool) "implicit deny" false
    (Acl.permits (Some acl) (Prefix.of_string "192.168.0.0/24"));
  Alcotest.(check bool) "no acl permits" true (Acl.permits None dest)

(* --- device validation ----------------------------------------------- *)

let test_validate_catches_bad_neighbor () =
  let g = Graph.of_links ~n:3 [ (0, 1) ] in
  let routers =
    Array.init 3 (fun v -> Device.default_router (Graph.name g v))
  in
  routers.(0) <-
    {
      (routers.(0)) with
      Device.bgp_neighbors =
        [ (2, { Device.import_rm = None; export_rm = None; ibgp = false; rel = Device.Rel_unknown }) ];
    };
  match Device.validate { Device.graph = g; routers } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected validation error"

let test_validate_ok_on_synthetic () =
  let dc = Synthesis.datacenter () in
  (match Device.validate dc.Synthesis.net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let wan = Synthesis.wan () in
  match Device.validate wan.Synthesis.net with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* --- BDD policy encoding --------------------------------------------- *)

let mini_net_with rm =
  (* a 2-node network whose single import route-map is [rm]; used to build
     a universe covering the map *)
  let g = Graph.of_links ~n:2 [ (0, 1) ] in
  let nb rm = { Device.import_rm = rm; export_rm = None; ibgp = false; rel = Device.Rel_unknown } in
  let routers =
    [|
      { (Device.default_router "a") with Device.bgp_neighbors = [ (1, nb (Some rm)) ] };
      { (Device.default_router "b") with Device.bgp_neighbors = [ (0, nb None) ] };
    |]
  in
  { Device.graph = g; routers }

let test_bdd_matches_eval_figure10 () =
  (* The paper's Figure 10 policy *)
  let net = mini_net_with rm_set_lp in
  let u = Policy_bdd.universe_of_network ~keep_unmatched_comms:true net in
  let b = Policy_bdd.encode_route_map u rm_set_lp ~dest in
  List.iter
    (fun comms ->
      let a = List.fold_left (fun a c -> Bgp.add_comm c a) Bgp.init comms in
      let expect = Route_map.eval rm_set_lp ~dest a in
      let got = Policy_bdd.apply u b a in
      Alcotest.(check bool)
        (Printf.sprintf "agree on {%s}"
           (String.concat "," (List.map string_of_int comms)))
        true
        (expect = got))
    [ []; [ 1 ]; [ 2 ]; [ 3 ]; [ 1; 2 ]; [ 1; 3 ]; [ 1; 2; 3 ] ]

let test_bdd_identity_equals_permit_all () =
  let net = mini_net_with rm_set_lp in
  let u = Policy_bdd.universe_of_network net in
  let id = Policy_bdd.identity u in
  let permit_all = Policy_bdd.encode_route_map u Route_map.permit_all ~dest in
  Alcotest.(check bool) "same bdd" true (Policy_bdd.same id permit_all)

let test_bdd_semantic_equality_of_different_syntax () =
  (* matching on communities in a different clause order with the same
     semantics yields the same BDD *)
  let rm1 : Route_map.t =
    [
      { verdict = Permit; conds = [ Match_community [ 1 ] ]; actions = [ Set_local_pref 200 ] };
      { verdict = Permit; conds = [ Match_community [ 2 ] ]; actions = [ Set_local_pref 200 ] };
      { verdict = Permit; conds = []; actions = [] };
    ]
  in
  let rm2 : Route_map.t =
    [
      { verdict = Permit; conds = [ Match_community [ 1; 2 ] ]; actions = [ Set_local_pref 200 ] };
      { verdict = Permit; conds = []; actions = [] };
    ]
  in
  let net = mini_net_with rm1 in
  let u = Policy_bdd.universe_of_network ~keep_unmatched_comms:true net in
  let b1 = Policy_bdd.encode_route_map u rm1 ~dest in
  let b2 = Policy_bdd.encode_route_map u rm2 ~dest in
  Alcotest.(check bool) "semantically equal maps share BDD" true
    (Policy_bdd.same b1 b2)

let test_bdd_drop_all () =
  let net = mini_net_with rm_set_lp in
  let u = Policy_bdd.universe_of_network net in
  let deny = Policy_bdd.encode_route_map u Route_map.deny_all ~dest in
  Alcotest.(check bool) "deny_all = drop_all" true
    (Policy_bdd.same deny (Policy_bdd.drop_all u));
  Alcotest.(check bool) "apply drops" true
    (Policy_bdd.apply u deny Bgp.init = None)

let test_bdd_compose_matches_sequential_eval () =
  let rm_tag : Route_map.t =
    [ { verdict = Permit; conds = []; actions = [ Add_community 1 ] } ]
  in
  let net = mini_net_with rm_set_lp in
  let u = Policy_bdd.universe_of_network ~keep_unmatched_comms:true net in
  let b1 = Policy_bdd.encode_route_map u rm_tag ~dest in
  let b2 = Policy_bdd.encode_route_map u rm_set_lp ~dest in
  let composed = Policy_bdd.compose u b1 b2 in
  List.iter
    (fun comms ->
      let a = List.fold_left (fun a c -> Bgp.add_comm c a) Bgp.init comms in
      let expect =
        Option.bind (Route_map.eval rm_tag ~dest a) (Route_map.eval rm_set_lp ~dest)
      in
      Alcotest.(check bool) "compose = sequential" true
        (Policy_bdd.apply u composed a = expect))
    [ []; [ 1 ]; [ 2 ]; [ 1; 2 ] ]

(* property: BDD encoding agrees with the interpreter on random maps *)

let gen_route_map : Route_map.t QCheck.arbitrary =
  let open QCheck.Gen in
  let comm = int_range 1 4 in
  let cond = map (fun cs -> Route_map.Match_community cs) (list_size (int_range 1 2) comm) in
  let action =
    oneof
      [
        map (fun c -> Route_map.Add_community c) comm;
        map (fun c -> Route_map.Delete_community c) comm;
        oneofl [ Route_map.Set_local_pref 200; Route_map.Set_local_pref 300 ];
        return (Route_map.Set_med 10);
      ]
  in
  let clause =
    let* verdict = frequency [ (3, return Route_map.Permit); (1, return Route_map.Deny) ] in
    let* conds = list_size (int_range 0 2) cond in
    let* actions = if verdict = Route_map.Deny then return [] else list_size (int_range 0 3) action in
    return { Route_map.verdict; conds; actions }
  in
  QCheck.make (list_size (int_range 0 4) clause)

let prop_bdd_matches_interpreter =
  QCheck.Test.make ~name:"BDD policy = route-map interpreter" ~count:200
    gen_route_map (fun rm ->
      let net = mini_net_with rm in
      let u = Policy_bdd.universe_of_network ~keep_unmatched_comms:true net in
      let b = Policy_bdd.encode_route_map u rm ~dest in
      List.for_all
        (fun bits ->
          let comms = List.filter (fun c -> (bits lsr c) land 1 = 1) [ 1; 2; 3; 4 ] in
          let a = List.fold_left (fun a c -> Bgp.add_comm c a) Bgp.init comms in
          Route_map.eval rm ~dest a = Policy_bdd.apply u b a)
        (List.init 32 Fun.id))

let prop_bdd_equal_iff_same_behavior =
  QCheck.Test.make ~name:"BDD pointer equality = behavioral equality" ~count:100
    (QCheck.pair gen_route_map gen_route_map) (fun (rm1, rm2) ->
      (* build one universe covering both maps *)
      let g = Graph.of_links ~n:2 [ (0, 1) ] in
      let nb rm = { Device.import_rm = Some rm; export_rm = None; ibgp = false; rel = Device.Rel_unknown } in
      let routers =
        [|
          { (Device.default_router "a") with Device.bgp_neighbors = [ (1, nb rm1) ] };
          { (Device.default_router "b") with Device.bgp_neighbors = [ (0, nb rm2) ] };
        |]
      in
      let net = { Device.graph = g; routers } in
      let u = Policy_bdd.universe_of_network ~keep_unmatched_comms:true net in
      let b1 = Policy_bdd.encode_route_map u rm1 ~dest in
      let b2 = Policy_bdd.encode_route_map u rm2 ~dest in
      let behave_same =
        List.for_all
          (fun bits ->
            let comms = List.filter (fun c -> (bits lsr c) land 1 = 1) [ 1; 2; 3; 4 ] in
            let mk lp = List.fold_left (fun a c -> Bgp.add_comm c a) { Bgp.init with Bgp.lp } comms in
            (* all universe lp values as inputs *)
            List.for_all
              (fun lp -> Route_map.eval rm1 ~dest (mk lp) = Route_map.eval rm2 ~dest (mk lp))
              (Array.to_list u.Policy_bdd.lps))
          (List.init 32 Fun.id)
      in
      Policy_bdd.same b1 b2 = behave_same)

(* --- prefs ------------------------------------------------------------ *)

let test_prefs () =
  let net = mini_net_with rm_set_lp in
  Alcotest.(check (list int)) "prefs with set" [ 100; 350 ]
    (Compile.prefs net ~dest 0);
  Alcotest.(check (list int)) "default only" [ 100 ] (Compile.prefs net ~dest 1)

(* --- destination equivalence classes ---------------------------------- *)

let test_ecs_basic () =
  let g = Graph.of_links ~n:3 [ (0, 1); (1, 2) ] in
  let routers =
    Array.init 3 (fun v -> Device.default_router (Graph.name g v))
  in
  routers.(0) <-
    { (routers.(0)) with Device.originated = [ Prefix.of_string "10.0.0.0/24" ] };
  routers.(2) <-
    {
      (routers.(2)) with
      Device.originated =
        [ Prefix.of_string "10.0.1.0/24"; Prefix.of_string "10.0.0.0/24" ];
    };
  let net = { Device.graph = g; routers } in
  let ecs = Ecs.compute net in
  Alcotest.(check int) "two classes" 2 (List.length ecs);
  let anycast =
    List.find
      (fun ec -> Prefix.equal ec.Ecs.ec_prefix (Prefix.of_string "10.0.0.0/24"))
      ecs
  in
  Alcotest.(check (list int)) "anycast origins" [ 0; 2 ] anycast.Ecs.ec_origins;
  Alcotest.check_raises "single_origin rejects anycast"
    (Invalid_argument "Ecs.single_origin: 10.0.0.0/24 has 2 origins")
    (fun () -> ignore (Ecs.single_origin anycast))

let test_ecs_ranges () =
  let g = Graph.of_links ~n:2 [ (0, 1) ] in
  let routers = Array.init 2 (fun v -> Device.default_router (Graph.name g v)) in
  routers.(0) <-
    { (routers.(0)) with Device.originated = [ Prefix.of_string "10.0.0.0/8" ] };
  routers.(1) <-
    {
      (routers.(1)) with
      Device.originated =
        [ Prefix.of_string "10.64.0.0/16"; Prefix.of_string "10.0.0.0/16" ];
    };
  let net = { Device.graph = g; routers } in
  let ec8 =
    List.find
      (fun ec -> Prefix.equal ec.Ecs.ec_prefix (Prefix.of_string "10.0.0.0/8"))
      (Ecs.compute net)
  in
  let rs = Ecs.ranges net ec8 in
  (* the /8 minus two /16 holes *)
  Alcotest.(check bool) "holes excluded" true
    (not
       (List.exists
          (fun r ->
            Prefix.overlap r (Prefix.of_string "10.0.0.0/16")
            || Prefix.overlap r (Prefix.of_string "10.64.0.0/16"))
          rs));
  (* ranges plus holes cover the /8: count addresses via prefix sizes *)
  let size p = 1 lsl (32 - (p : Prefix.t).Prefix.len) in
  let total = List.fold_left (fun acc p -> acc + size p) 0 rs in
  Alcotest.(check int) "covers /8 minus two /16" ((1 lsl 24) - (2 * (1 lsl 16))) total;
  (* pairwise disjoint *)
  List.iteri
    (fun i p ->
      List.iteri
        (fun j q ->
          if i <> j then
            Alcotest.(check bool) "disjoint" false (Prefix.overlap p q))
        rs)
    rs;
  (* an EC with no more-specific classes governs exactly its prefix *)
  let ec16 =
    List.find
      (fun ec -> Prefix.equal ec.Ecs.ec_prefix (Prefix.of_string "10.64.0.0/16"))
      (Ecs.compute net)
  in
  Alcotest.(check (list string)) "whole prefix" [ "10.64.0.0/16" ]
    (List.map Prefix.to_string (Ecs.ranges net ec16))

let test_ecs_lpm () =
  let g = Graph.of_links ~n:2 [ (0, 1) ] in
  let routers = Array.init 2 (fun v -> Device.default_router (Graph.name g v)) in
  routers.(0) <-
    { (routers.(0)) with Device.originated = [ Prefix.of_string "10.0.0.0/8" ] };
  routers.(1) <-
    { (routers.(1)) with Device.originated = [ Prefix.of_string "10.1.0.0/16" ] };
  let net = { Device.graph = g; routers } in
  (match Ecs.ec_for net (Ipv4.of_string "10.1.2.3") with
  | Some ec -> Alcotest.(check (list int)) "longest wins" [ 1 ] ec.Ecs.ec_origins
  | None -> Alcotest.fail "no ec");
  match Ecs.ec_for net (Ipv4.of_string "10.2.0.1") with
  | Some ec -> Alcotest.(check (list int)) "fallback" [ 0 ] ec.Ecs.ec_origins
  | None -> Alcotest.fail "no ec"

(* --- synthetic networks ----------------------------------------------- *)

let test_synthetic_counts () =
  let dc = Synthesis.datacenter () in
  Alcotest.(check int) "dc nodes" 197 (Graph.n_nodes dc.Synthesis.net.Device.graph);
  Alcotest.(check int) "dc ecs" (1280 + 24) (Ecs.count dc.Synthesis.net);
  let wan = Synthesis.wan () in
  Alcotest.(check int) "wan nodes" 1086
    (Graph.n_nodes wan.Synthesis.net.Device.graph);
  Alcotest.(check bool) "wan ecs in range" true
    (let n = Ecs.count wan.Synthesis.net in
     n > 700 && n < 1000)

let test_fattree_originators () =
  let ft = Generators.fattree ~k:4 in
  let net = Synthesis.fattree_shortest_path ft in
  (* only edge (ToR) routers originate *)
  Alcotest.(check int) "ecs = edge routers" (Array.length ft.Generators.ft_edge)
    (Ecs.count net)

let test_config_lines_scale () =
  let dc = Synthesis.datacenter () in
  Alcotest.(check bool) "datacenter config is large" true
    (Device.config_lines dc.Synthesis.net > 3000)

(* --- compile helpers --------------------------------------------------- *)

let test_matched_comms () =
  let net = mini_net_with rm_set_lp in
  let matched = Compile.matched_comms net in
  Alcotest.(check bool) "1 matched" true (matched 1);
  Alcotest.(check bool) "2 matched" true (matched 2);
  Alcotest.(check bool) "3 set but unmatched" false (matched 3)

let test_bgp_policy_acl_denies () =
  let g = Graph.of_links ~n:2 [ (0, 1) ] in
  let nb = { Device.import_rm = None; export_rm = None; ibgp = false; rel = Device.Rel_unknown } in
  let deny : Acl.t = [ { permit = false; prefix = Prefix.of_string "10.0.0.0/8" } ] in
  let routers =
    [|
      {
        (Device.default_router "a") with
        Device.bgp_neighbors = [ (1, nb) ];
        acl_out = [ (1, deny) ];
      };
      { (Device.default_router "b") with Device.bgp_neighbors = [ (0, nb) ] };
    |]
  in
  let net = { Device.graph = g; routers } in
  (* a's outbound ACL towards b denies the destination: the route a would
     use via b is conservatively filtered *)
  Alcotest.(check bool) "dropped by acl" true
    (Compile.bgp_policy net ~dest 0 1 Bgp.init = None);
  Alcotest.(check bool) "other direction fine" true
    (Compile.bgp_policy net ~dest 1 0 Bgp.init <> None)

let test_policy_bdd_var_names () =
  let net = mini_net_with rm_set_lp in
  let u = Policy_bdd.universe_of_network ~keep_unmatched_comms:true net in
  Alcotest.(check string) "input comm" "comm(1)" (Policy_bdd.var_name u 0);
  Alcotest.(check string) "output comm" "comm(1)'" (Policy_bdd.var_name u 1);
  let drop_field = u.Policy_bdd.width - 1 in
  Alcotest.(check string) "output drop" "drop'"
    (Policy_bdd.var_name u ((3 * drop_field) + 1))

let test_policy_bdd_apply_rejects_unknown_lp () =
  let net = mini_net_with rm_set_lp in
  let u = Policy_bdd.universe_of_network net in
  let b = Policy_bdd.identity u in
  Alcotest.check_raises "lp outside universe"
    (Invalid_argument "Policy_bdd.apply: local-pref outside the universe")
    (fun () -> ignore (Policy_bdd.apply u b { Bgp.init with Bgp.lp = 7777 }))

let test_ios_link_addressing_consistent () =
  (* both ends of each link agree on the /30 and use different hosts *)
  let net = Synthesis.ring_bgp ~n:5 in
  let text = Ios_print.to_string net in
  (* every address appears exactly once across interface stanzas *)
  let addrs =
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
           let l = String.trim l in
           (* link interfaces only: /30 mask (loopbacks carry the
              originated prefixes) *)
           if
             String.length l > 11
             && String.sub l 0 11 = "ip address "
             && Astring_contains.contains l "255.255.255.252"
           then Some l
           else None)
  in
  Alcotest.(check int) "one interface stanza per directed link" 10
    (List.length addrs);
  Alcotest.(check int) "all distinct" 10
    (List.length (List.sort_uniq compare addrs))

(* --- device helpers ------------------------------------------------------ *)

let test_static_next_hops () =
  let r =
    {
      (Device.default_router "r") with
      Device.static_routes =
        [
          (Prefix.of_string "10.0.0.0/8", 1);
          (Prefix.of_string "10.1.0.0/16", 2);
          (Prefix.of_string "192.168.0.0/16", 3);
        ];
    }
  in
  (* longest match wins among covering statics: /16 beats /8 *)
  Alcotest.(check (list int)) "most specific static wins" [ 2 ]
    (Device.static_next_hops r ~dest:(Prefix.of_string "10.1.2.0/24"));
  Alcotest.(check (list int)) "less specific still covers the rest" [ 1 ]
    (Device.static_next_hops r ~dest:(Prefix.of_string "10.2.0.0/16"));
  Alcotest.(check (list int)) "outside" []
    (Device.static_next_hops r ~dest:(Prefix.of_string "172.16.0.0/16"))

let test_ec_for_outside_space () =
  let net = Synthesis.ring_bgp ~n:4 in
  Alcotest.(check bool) "no class for unannounced space" true
    (Ecs.ec_for net (Ipv4.of_string "192.168.1.1") = None)

let () =
  Alcotest.run "config"
    [
      ( "route-map",
        [
          Alcotest.test_case "first match wins" `Quick test_eval_first_match_wins;
          Alcotest.test_case "implicit deny" `Quick test_eval_implicit_deny;
          Alcotest.test_case "deny clause" `Quick test_eval_deny_clause;
          Alcotest.test_case "prefix match" `Quick test_eval_prefix_match;
          Alcotest.test_case "relevant/local_prefs" `Quick
            test_relevant_strips_prefix_conds;
          Alcotest.test_case "community harvest" `Quick test_community_harvest;
        ] );
      ("acl", [ Alcotest.test_case "first overlap decides" `Quick test_acl ]);
      ( "device",
        [
          Alcotest.test_case "validation failure" `Quick
            test_validate_catches_bad_neighbor;
          Alcotest.test_case "synthetics validate" `Quick
            test_validate_ok_on_synthetic;
        ] );
      ( "policy-bdd",
        [
          Alcotest.test_case "figure 10 policy" `Quick test_bdd_matches_eval_figure10;
          Alcotest.test_case "identity" `Quick test_bdd_identity_equals_permit_all;
          Alcotest.test_case "semantic equality" `Quick
            test_bdd_semantic_equality_of_different_syntax;
          Alcotest.test_case "drop all" `Quick test_bdd_drop_all;
          Alcotest.test_case "compose" `Quick test_bdd_compose_matches_sequential_eval;
        ] );
      ("prefs", [ Alcotest.test_case "extraction" `Quick test_prefs ]);
      ( "ecs",
        [
          Alcotest.test_case "classes + anycast" `Quick test_ecs_basic;
          Alcotest.test_case "disjoint ranges" `Quick test_ecs_ranges;
          Alcotest.test_case "lpm" `Quick test_ecs_lpm;
        ] );
      ( "compile",
        [
          Alcotest.test_case "matched_comms" `Quick test_matched_comms;
          Alcotest.test_case "acl denies route" `Quick test_bgp_policy_acl_denies;
          Alcotest.test_case "bdd var names" `Quick test_policy_bdd_var_names;
          Alcotest.test_case "apply guards lp" `Quick
            test_policy_bdd_apply_rejects_unknown_lp;
          Alcotest.test_case "ios addressing" `Quick
            test_ios_link_addressing_consistent;
          Alcotest.test_case "static next hops" `Quick test_static_next_hops;
          Alcotest.test_case "ec_for outside" `Quick test_ec_for_outside_space;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "dc/wan counts" `Quick test_synthetic_counts;
          Alcotest.test_case "fattree originators" `Quick test_fattree_originators;
          Alcotest.test_case "config scale" `Quick test_config_lines_scale;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_bdd_matches_interpreter; prop_bdd_equal_iff_same_behavior ] );
    ]

(* Emitting the compressed network as configurations: validity, behavioral
   agreement with the in-memory abstract SRP, idempotence of compression,
   and configuration-level size reduction. *)

let compress net =
  let ec = List.hd (Ecs.compute net) in
  (ec, (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction)

let test_emitted_validates () =
  List.iter
    (fun net ->
      let _, t = compress net in
      match Device.validate (Abstract_config.emit t) with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [
      Synthesis.fattree_shortest_path (Generators.fattree ~k:4);
      Synthesis.ring_bgp ~n:10;
      Synthesis.mesh_bgp ~n:8;
      (Synthesis.datacenter ()).Synthesis.net;
    ]

let test_emitted_behavior_matches_abstract_srp () =
  let net = Synthesis.fattree_shortest_path (Generators.fattree ~k:6) in
  let ec, t = compress net in
  let emitted = Abstract_config.emit t in
  let direct = Abstraction.bgp_srp t in
  let from_config =
    Compile.bgp_srp emitted ~dest:t.Abstraction.abs_dest
      ~dest_prefix:ec.Ecs.ec_prefix
  in
  let s1 = Solver.solve_exn direct in
  let s2 = Solver.solve_exn from_config in
  for a = 0 to Abstraction.n_abstract t - 1 do
    (* labels agree (the compiled network does not erase unmatched
       communities, so compare modulo the attribute abstraction) *)
    let norm = function
      | None -> None
      | Some attr -> Some (Abstraction.h_attr t ~fr:Fun.id attr)
    in
    Alcotest.(check bool)
      (Printf.sprintf "label at %d" a)
      true
      (norm (Solution.label s1 a) = norm (Solution.label s2 a));
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "fwd at %d" a)
      (Solution.fwd s1 a) (Solution.fwd s2 a)
  done

let test_idempotent_on_plain_networks () =
  List.iter
    (fun (name, net) ->
      let ec, t = compress net in
      let emitted = Abstract_config.emit t in
      let ec' =
        List.find
          (fun e -> Prefix.equal e.Ecs.ec_prefix ec.Ecs.ec_prefix)
          (Ecs.compute emitted)
      in
      let t' = (Bonsai_api.compress_ec_exn emitted ec').Bonsai_api.abstraction in
      Alcotest.(check int)
        (name ^ ": recompression is a no-op")
        (Graph.n_nodes emitted.Device.graph)
        (Abstraction.n_abstract t'))
    [
      ("fattree", Synthesis.fattree_shortest_path (Generators.fattree ~k:6));
      ("ring", Synthesis.ring_bgp ~n:12);
      ("mesh", Synthesis.mesh_bgp ~n:9);
      ( "prefer-bottom",
        Synthesis.fattree_prefer_bottom (Generators.fattree ~k:4) );
    ]

let test_idempotent_on_datacenter () =
  let net = (Synthesis.datacenter ()).Synthesis.net in
  let ec, t = compress net in
  let emitted = Abstract_config.emit t in
  let ec' =
    List.find
      (fun e -> Prefix.equal e.Ecs.ec_prefix ec.Ecs.ec_prefix)
      (Ecs.compute emitted)
  in
  let t' = (Bonsai_api.compress_ec_exn emitted ec').Bonsai_api.abstraction in
  Alcotest.(check int) "recompression is a no-op"
    (Graph.n_nodes emitted.Device.graph)
    (Abstraction.n_abstract t')

let test_statics_map_through () =
  (* for a service-prefix class, the leaves' static routes survive into the
     emitted abstract configuration *)
  let net = (Synthesis.datacenter ()).Synthesis.net in
  let ec =
    List.find
      (fun ec ->
        Prefix.subset ec.Ecs.ec_prefix (Prefix.of_string "10.100.0.0/16"))
      (Ecs.compute net)
  in
  let t = (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction in
  let emitted = Abstract_config.emit t in
  let with_static =
    Array.to_list emitted.Device.routers
    |> List.filter (fun (r : Device.router) ->
           List.exists (fun (p, _) -> Prefix.equal p ec.Ecs.ec_prefix)
             r.Device.static_routes)
  in
  Alcotest.(check bool) "some abstract router keeps the static" true
    (with_static <> []);
  (* and the class still resolves the same way end to end *)
  let sol = Solver.solve_exn (Compile.multi_srp emitted ~dest:t.Abstraction.abs_dest ~dest_prefix:ec.Ecs.ec_prefix) in
  Alcotest.(check bool) "abstract configs solve" true (Solution.is_stable sol)

let test_config_reduction () =
  let net = (Synthesis.datacenter ()).Synthesis.net in
  let _, t = compress net in
  let before, after = Abstract_config.config_reduction t in
  Alcotest.(check bool)
    (Printf.sprintf "%d -> %d lines" before after)
    true
    (after * 4 < before)

let test_emitted_verification_agrees () =
  (* reachability verdicts computed on the emitted configs match the
     concrete network's *)
  let net = Synthesis.fattree_shortest_path (Generators.fattree ~k:6) in
  let ec, t = compress net in
  let emitted = Abstract_config.emit t in
  let sol =
    Solver.solve_exn
      (Compile.bgp_srp emitted ~dest:t.Abstraction.abs_dest
         ~dest_prefix:ec.Ecs.ec_prefix)
  in
  let dest = Ecs.single_origin ec in
  let concrete =
    Solver.solve_exn (Compile.bgp_srp net ~dest ~dest_prefix:ec.Ecs.ec_prefix)
  in
  for u = 0 to Graph.n_nodes net.Device.graph - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "reachability of %d" u)
      (Properties.reachable concrete u)
      (Properties.reachable sol (Abstraction.f t u))
  done

let () =
  Alcotest.run "abstract-config"
    [
      ( "emit",
        [
          Alcotest.test_case "validates" `Quick test_emitted_validates;
          Alcotest.test_case "matches abstract srp" `Quick
            test_emitted_behavior_matches_abstract_srp;
          Alcotest.test_case "verification agrees" `Quick
            test_emitted_verification_agrees;
        ] );
      ( "idempotence",
        [
          Alcotest.test_case "plain networks" `Quick
            test_idempotent_on_plain_networks;
          Alcotest.test_case "datacenter" `Quick test_idempotent_on_datacenter;
        ] );
      ( "statics",
        [ Alcotest.test_case "map through" `Quick test_statics_map_through ] );
      ( "reduction",
        [ Alcotest.test_case "config lines" `Quick test_config_reduction ] );
    ]

(* Tests for lib/dataplane: FIB compilation corner cases (LPM on
   overlapping prefixes, static ECMP, first-match ACL semantics, dangling
   next hops), the differential compiler (Dp_diff: reuse proofs, change
   reports, budget degradation), and the concrete↔abstract data-plane
   bisimulation (Dp_bisim) — including the property that compression
   results bisimulate on random networks and that a corrupted
   abstraction is refuted with a typed witness.

   QCheck iterations default small; scale with FUZZ_COUNT. *)

let fuzz_count =
  match Option.bind (Sys.getenv_opt "FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 25

let p_of = Prefix.of_string
let a_of = Ipv4.of_string

(* --- FIB corner cases -------------------------------------------------- *)

(* d1(0) -- m(1) -- d2(2): d1 owns 10.0.0.0/16, d2 the nested
   10.0.0.0/24. LPM at m must send /24 addresses right and the rest of
   the /16 left. *)
let overlap_net () =
  let g = Graph.of_links ~n:3 [ (0, 1); (1, 2) ] in
  let p16 = p_of "10.0.0.0/16" and p24 = p_of "10.0.0.0/24" in
  let routers =
    [|
      { (Device.default_router "d1") with Device.originated = [ p16 ] };
      {
        (Device.default_router "m") with
        Device.static_routes = [ (p16, 0); (p24, 2) ];
      };
      { (Device.default_router "d2") with Device.originated = [ p24 ] };
    |]
  in
  { Device.graph = g; routers }

let test_lpm_overlap () =
  let dp = Dataplane.of_network ~protocol:`Multi (overlap_net ()) in
  Alcotest.(check (list int)) "/24 wins at m" [ 2 ]
    (Dataplane.lookup dp 1 (a_of "10.0.0.5"));
  Alcotest.(check (list int)) "/16 covers the rest" [ 0 ]
    (Dataplane.lookup dp 1 (a_of "10.0.77.5"));
  (match Dataplane.trace dp ~src:1 (a_of "10.0.0.5") with
  | Dataplane.Delivered [ 1; 2 ] -> ()
  | _ -> Alcotest.fail "nested /24 not delivered to d2");
  match Dataplane.trace dp ~src:1 (a_of "10.0.77.5") with
  | Dataplane.Delivered [ 1; 0 ] -> ()
  | _ -> Alcotest.fail "/16 remainder not delivered to d1"

(* diamond m(0) -- {a(1), b(2)} -- d(3): two equal static routes at m. *)
let test_static_ecmp () =
  let g = Graph.of_links ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let p = p_of "10.0.0.0/24" in
  let routers =
    [|
      {
        (Device.default_router "m") with
        Device.static_routes = [ (p, 1); (p, 2) ];
      };
      { (Device.default_router "a") with Device.static_routes = [ (p, 3) ] };
      { (Device.default_router "b") with Device.static_routes = [ (p, 3) ] };
      { (Device.default_router "d") with Device.originated = [ p ] };
    |]
  in
  let dp = Dataplane.of_network ~protocol:`Multi { Device.graph = g; routers } in
  Alcotest.(check (list int)) "both next hops" [ 1; 2 ]
    (List.sort compare (Dataplane.lookup dp 0 (a_of "10.0.0.1")));
  let paths = Dataplane.trace_all dp ~src:0 (a_of "10.0.0.1") in
  Alcotest.(check int) "two ecmp paths" 2 (List.length paths);
  List.iter
    (function
      | Dataplane.Delivered _ -> ()
      | _ -> Alcotest.fail "ecmp path not delivered")
    paths

(* d(0) -- m(1) -- s(2), all-static; m's outbound ACL towards d denies
   p1 (before a broad permit), permits p2, and matches nothing for p3
   (implicit deny on a non-empty ACL). *)
let acl_net ~with_acl () =
  let g = Graph.of_links ~n:3 [ (0, 1); (1, 2) ] in
  let p1 = p_of "10.0.0.0/24"
  and p2 = p_of "10.0.1.0/24"
  and p3 = p_of "172.16.0.0/24" in
  let statics = [ (p1, 0); (p2, 0); (p3, 0) ] in
  let acl_out =
    if with_acl then
      [
        ( 0,
          [
            { Acl.permit = false; prefix = p1 };
            { Acl.permit = true; prefix = p_of "10.0.0.0/8" };
          ] );
      ]
    else []
  in
  let routers =
    [|
      { (Device.default_router "d") with Device.originated = [ p1; p2; p3 ] };
      {
        (Device.default_router "m") with
        Device.static_routes = statics;
        acl_out;
      };
      {
        (Device.default_router "s") with
        Device.static_routes = [ (p1, 1); (p2, 1); (p3, 1) ];
      };
    |]
  in
  { Device.graph = g; routers }

let test_acl_first_match () =
  let dp = Dataplane.of_network ~protocol:`Multi (acl_net ~with_acl:true ()) in
  let entry p =
    match
      List.find_opt
        (fun (e : Dataplane.entry) -> Prefix.equal e.Dataplane.e_prefix p)
        (Dataplane.fib_entries dp 1)
    with
    | Some e -> e
    | None -> Alcotest.fail "m has no entry"
  in
  (* deny-then-permit: the deny clause wins even though the later permit
     also covers p1 — an ACL-induced blackhole *)
  let e1 = entry (p_of "10.0.0.0/24") in
  Alcotest.(check (list int)) "p1 blackholed" [] e1.Dataplane.e_next_hops;
  Alcotest.(check (list int)) "p1 drop recorded" [ 0 ]
    e1.Dataplane.e_acl_dropped;
  (* the permit clause passes p2 *)
  let e2 = entry (p_of "10.0.1.0/24") in
  Alcotest.(check (list int)) "p2 forwarded" [ 0 ] e2.Dataplane.e_next_hops;
  (* no clause matches p3: implicit deny *)
  let e3 = entry (p_of "172.16.0.0/24") in
  Alcotest.(check (list int)) "p3 implicit deny" [] e3.Dataplane.e_next_hops;
  (match Dataplane.trace dp ~src:2 (a_of "10.0.0.1") with
  | Dataplane.Dropped [ 2; 1 ] -> ()
  | _ -> Alcotest.fail "p1 should drop at m");
  match Dataplane.trace dp ~src:2 (a_of "10.0.1.1") with
  | Dataplane.Delivered [ 2; 1; 0 ] -> ()
  | _ -> Alcotest.fail "p2 should deliver"

(* ACL-free network: the fold must be invisible (Acl.permits None = true). *)
let test_aclfree_untouched () =
  let dp = Dataplane.of_network ~protocol:`Multi (acl_net ~with_acl:false ()) in
  List.iter
    (fun (e : Dataplane.entry) ->
      Alcotest.(check (list int)) "nothing dropped" [] e.Dataplane.e_acl_dropped)
    (Dataplane.fib_entries dp 1);
  match Dataplane.trace dp ~src:2 (a_of "10.0.0.1") with
  | Dataplane.Delivered [ 2; 1; 0 ] -> ()
  | _ -> Alcotest.fail "p1 should deliver without the ACL"

(* d(0) -- r1(1) -- r2(2): r2 points at r1, which has no route at all —
   the walk must stop with a drop at r1, not an error. *)
let test_dangling_next_hop () =
  let g = Graph.of_links ~n:3 [ (0, 1); (1, 2) ] in
  let p = p_of "10.0.0.0/24" in
  let routers =
    [|
      { (Device.default_router "d") with Device.originated = [ p ] };
      Device.default_router "r1";
      { (Device.default_router "r2") with Device.static_routes = [ (p, 1) ] };
    |]
  in
  let dp = Dataplane.of_network ~protocol:`Multi { Device.graph = g; routers } in
  match Dataplane.trace dp ~src:2 (a_of "10.0.0.1") with
  | Dataplane.Dropped [ 2; 1 ] -> ()
  | _ -> Alcotest.fail "expected a drop at the dangling hop"

(* --- Dp_diff ----------------------------------------------------------- *)

let run_diff ?budget ?cache old_net new_net =
  match
    Dp_diff.run ?budget ?cache ~old_net ~new_net (Delta.diff old_net new_net)
  with
  | Ok rep -> rep
  | Error e ->
    Alcotest.fail (Format.asprintf "dp_diff failed: %a" Bonsai_error.pp e)

let test_diff_identical () =
  let net = Synthesis.ring_bgp ~n:6 in
  let rep = run_diff net net in
  Alcotest.(check bool) "unchanged" false (Dp_diff.changed rep);
  Alcotest.(check int) "all reused" rep.Dp_diff.dp_classes
    rep.Dp_diff.dp_reused;
  Alcotest.(check int) "nothing recompiled" 0 rep.Dp_diff.dp_recompiled;
  Alcotest.(check (list string)) "no unknown" []
    (List.map Prefix.to_string rep.Dp_diff.dp_unknown)

(* d(0) -- m(1) -- s(2) -- t(3): the ACL sits at s towards m, one hop
   away from the destination, so the Acl_set delta's touched set {s, m}
   leaves d alone and the untouched class (p2) can be proven clean. *)
let diff_acl_net ~with_acl () =
  let g = Graph.of_links ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let p1 = p_of "10.0.0.0/24"
  and p2 = p_of "10.0.1.0/24"
  and p3 = p_of "172.16.0.0/24" in
  let statics nh = [ (p1, nh); (p2, nh); (p3, nh) ] in
  let acl_out =
    if with_acl then
      [
        ( 1,
          [
            { Acl.permit = false; prefix = p1 };
            { Acl.permit = true; prefix = p_of "10.0.0.0/8" };
          ] );
      ]
    else []
  in
  let routers =
    [|
      { (Device.default_router "d") with Device.originated = [ p1; p2; p3 ] };
      { (Device.default_router "m") with Device.static_routes = statics 0 };
      {
        (Device.default_router "s") with
        Device.static_routes = statics 1;
        acl_out;
      };
      { (Device.default_router "t") with Device.static_routes = statics 2 };
    |]
  in
  { Device.graph = g; routers }

let test_diff_acl_change () =
  let old_net = diff_acl_net ~with_acl:false () in
  let new_net = diff_acl_net ~with_acl:true () in
  let rep = run_diff old_net new_net in
  Alcotest.(check bool) "changed" true (Dp_diff.changed rep);
  let added, removed, modified = Dp_diff.counts rep in
  Alcotest.(check (list int)) "modified only" [ 0; 0; 2 ]
    [ added; removed; modified ];
  (* p1 (deny clause) and p3 (implicit deny) blackhole at m; p2's class
     is untouched by the ACL's signature and must be reused *)
  let mods =
    List.map
      (fun (c : Dp_diff.change) -> Prefix.to_string c.Dp_diff.c_prefix)
      rep.Dp_diff.dp_changes
  in
  Alcotest.(check (list string)) "blackholed prefixes"
    [ "10.0.0.0/24"; "172.16.0.0/24" ]
    (List.sort compare mods);
  List.iter
    (fun (c : Dp_diff.change) ->
      Alcotest.(check int) "at s" 2 c.Dp_diff.c_router;
      match (c.Dp_diff.c_old, c.Dp_diff.c_new) with
      | Some o, Some n ->
        Alcotest.(check (list int)) "was forwarding" [ 1 ]
          o.Dataplane.e_next_hops;
        Alcotest.(check (list int)) "now blackholed" [] n.Dataplane.e_next_hops;
        Alcotest.(check (list int)) "drop recorded" [ 1 ]
          n.Dataplane.e_acl_dropped
      | _ -> Alcotest.fail "modified change must carry both entries")
    rep.Dp_diff.dp_changes;
  (* p2 passes the ACL on both sides: its per-class edge signatures are
     equal across the delta, so the clean-class proof must fire *)
  Alcotest.(check int) "p2 class reused" 1 rep.Dp_diff.dp_reused

let test_diff_budget_unknown () =
  let old_net = Synthesis.ring_bgp ~n:4 in
  let new_net = Synthesis.ring_bgp ~n:6 in
  let budget = Budget.create ~max_ticks:1 () in
  let rep = run_diff ~budget old_net new_net in
  Alcotest.(check bool) "unknown classes reported" true
    (rep.Dp_diff.dp_unknown <> []);
  Alcotest.(check bool) "degradation attached" true
    (Option.is_some rep.Dp_diff.dp_degradation);
  (* every class is accounted for: reused + recompiled + unknown *)
  Alcotest.(check int) "no class silently dropped" rep.Dp_diff.dp_classes
    (rep.Dp_diff.dp_reused + rep.Dp_diff.dp_recompiled
    + List.length rep.Dp_diff.dp_unknown)

(* --- Dp_bisim ---------------------------------------------------------- *)

let bisim_verdict net =
  let s = Bonsai_api.compress_exn net in
  Dp_bisim.check net s.Bonsai_api.results

let test_bisim_ring () =
  match bisim_verdict (Synthesis.ring_bgp ~n:8) with
  | Dp_bisim.Equivalent { classes; traces } ->
    Alcotest.(check int) "all classes" 8 classes;
    Alcotest.(check bool) "traced" true (traces > 0)
  | _ -> Alcotest.fail "ring must bisimulate"

let test_bisim_fattree () =
  match bisim_verdict (Synthesis.fattree_shortest_path (Generators.fattree ~k:4)) with
  | Dp_bisim.Equivalent { classes; _ } ->
    Alcotest.(check int) "all classes" 8 classes
  | _ -> Alcotest.fail "fattree must bisimulate"

(* Corrupt a compression result — disconnect the abstract destination —
   and demand a typed (router, prefix, path) witness. *)
let test_bisim_refutes_corruption () =
  let net = Synthesis.ring_bgp ~n:6 in
  let s = Bonsai_api.compress_exn net in
  let r =
    match
      List.find_opt
        (fun (r : Bonsai_api.ec_result) ->
          not (Abstraction.is_identity r.Bonsai_api.abstraction))
        s.Bonsai_api.results
    with
    | Some r -> r
    | None -> Alcotest.fail "expected a non-identity abstraction"
  in
  let t = r.Bonsai_api.abstraction in
  let ag = t.Abstraction.abs_graph in
  let cut =
    Graph.of_links ~n:(Graph.n_nodes ag)
      (List.filter
         (fun (u, v) ->
           u <> t.Abstraction.abs_dest && v <> t.Abstraction.abs_dest)
         (Graph.edges ag))
  in
  let corrupted =
    { r with Bonsai_api.abstraction = { t with Abstraction.abs_graph = cut } }
  in
  match Dp_bisim.check net [ corrupted ] with
  | Dp_bisim.Refuted rf ->
    Alcotest.(check bool) "witness names the class" true
      (Prefix.equal rf.Dp_bisim.rf_prefix r.Bonsai_api.ec.Ecs.ec_prefix);
    (match rf.Dp_bisim.rf_concrete with
    | Dataplane.Delivered (hd :: _) ->
      Alcotest.(check int) "concrete witness starts at the router" hd
        rf.Dp_bisim.rf_router
    | _ -> Alcotest.fail "concrete witness should deliver");
    (* the refutation renders with router names *)
    let msg = Dp_bisim.refutation_string net t rf in
    Alcotest.(check bool) "witness mentions the prefix" true
      (let p = Prefix.to_string rf.Dp_bisim.rf_prefix in
       let rec contains i =
         i + String.length p <= String.length msg
         && (String.sub msg i (String.length p) = p || contains (i + 1))
       in
       contains 0)
  | Dp_bisim.Equivalent _ -> Alcotest.fail "corruption not detected"
  | Dp_bisim.Incomplete _ -> Alcotest.fail "check did not finish"

let test_bisim_budget_incomplete () =
  let net = Synthesis.ring_bgp ~n:6 in
  let s = Bonsai_api.compress_exn net in
  let budget = Budget.create ~max_ticks:1 () in
  match Dp_bisim.check ~budget net s.Bonsai_api.results with
  | Dp_bisim.Incomplete { unknown; _ } ->
    Alcotest.(check bool) "unchecked classes reported" true (unknown <> [])
  | Dp_bisim.Equivalent _ -> Alcotest.fail "1-tick budget cannot finish"
  | Dp_bisim.Refuted _ -> Alcotest.fail "nothing to refute"

(* --- fuzz: compression results bisimulate at the data plane ------------ *)

let prop_bisim mk_net name =
  QCheck.Test.make ~count:fuzz_count ~name
    QCheck.(int_range 0 100000)
    (fun seed ->
      let net = mk_net seed in
      match bisim_verdict net with
      | Dp_bisim.Equivalent _ -> true
      | Dp_bisim.Refuted rf ->
        QCheck.Test.fail_reportf "refuted: router %d, prefix %s"
          rf.Dp_bisim.rf_router
          (Prefix.to_string rf.Dp_bisim.rf_prefix)
      | Dp_bisim.Incomplete _ ->
        QCheck.Test.fail_reportf "incomplete without a budget")

let prop_bisim_ring =
  prop_bisim
    (fun seed -> Synthesis.ring_bgp ~n:(4 + (seed mod 5)))
    "concrete ≡ abstract data plane (ring)"

let prop_bisim_fattree =
  prop_bisim
    (fun _ -> Synthesis.fattree_shortest_path (Generators.fattree ~k:4))
    "concrete ≡ abstract data plane (fattree)"

let prop_bisim_multi =
  prop_bisim
    (fun seed -> Synthesis.random_multi_network ~n:8 ~seed)
    "concrete ≡ abstract data plane (random multi-protocol)"

(* fuzz: a corrupted abstraction is refuted on random rings *)
let prop_corruption_refuted =
  QCheck.Test.make ~count:fuzz_count ~name:"corrupted abstraction refuted"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let net = Synthesis.ring_bgp ~n:(5 + (seed mod 4)) in
      let s = Bonsai_api.compress_exn net in
      match
        List.find_opt
          (fun (r : Bonsai_api.ec_result) ->
            not (Abstraction.is_identity r.Bonsai_api.abstraction))
          s.Bonsai_api.results
      with
      | None -> QCheck.assume_fail ()
      | Some r -> (
        let t = r.Bonsai_api.abstraction in
        let cut =
          Graph.of_links
            ~n:(Graph.n_nodes t.Abstraction.abs_graph)
            (List.filter
               (fun (u, v) ->
                 u <> t.Abstraction.abs_dest && v <> t.Abstraction.abs_dest)
               (Graph.edges t.Abstraction.abs_graph))
        in
        let corrupted =
          {
            r with
            Bonsai_api.abstraction = { t with Abstraction.abs_graph = cut };
          }
        in
        match Dp_bisim.check net [ corrupted ] with
        | Dp_bisim.Refuted _ -> true
        | _ -> false))

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "dataplane"
    [
      ( "fib",
        [
          Alcotest.test_case "lpm overlap" `Quick test_lpm_overlap;
          Alcotest.test_case "static ecmp" `Quick test_static_ecmp;
          Alcotest.test_case "acl first-match" `Quick test_acl_first_match;
          Alcotest.test_case "acl-free untouched" `Quick
            test_aclfree_untouched;
          Alcotest.test_case "dangling next hop" `Quick
            test_dangling_next_hop;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical" `Quick test_diff_identical;
          Alcotest.test_case "acl change" `Quick test_diff_acl_change;
          Alcotest.test_case "budget unknown" `Quick
            test_diff_budget_unknown;
        ] );
      ( "bisim",
        [
          Alcotest.test_case "ring" `Quick test_bisim_ring;
          Alcotest.test_case "fattree" `Quick test_bisim_fattree;
          Alcotest.test_case "refutes corruption" `Quick
            test_bisim_refutes_corruption;
          Alcotest.test_case "budget incomplete" `Quick
            test_bisim_budget_incomplete;
        ] );
      qsuite "fuzz"
        [
          prop_bisim_ring;
          prop_bisim_fattree;
          prop_bisim_multi;
          prop_corruption_refuted;
        ];
    ]

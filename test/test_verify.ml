(* Property checkers and the all-pairs reachability engine, including
   concrete/abstract agreement (the soundness claim behind Figure 12). *)

let diamond () = Graph.of_links ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_reachable_and_blackhole () =
  let g = Graph.of_links ~n:4 [ (0, 1); (1, 2) ] in
  let sol = Solver.solve_exn (Rip.make g ~dest:0) in
  Alcotest.(check bool) "2 reachable" true (Properties.reachable sol 2);
  Alcotest.(check bool) "3 unreachable" false (Properties.reachable sol 3);
  (* an isolated node's own traffic dies immediately: by the paper's
     definition (a path ending with label ⊥) that is a black hole *)
  Alcotest.(check bool) "3 black-holes its own traffic" true
    (Properties.black_hole sol 3)

let test_black_hole_on_partial_path () =
  (* static routing: 2 -> 1 but 1 has no route: traffic from 2 dies at 1 *)
  let g = Graph.of_links ~n:3 [ (0, 1); (1, 2) ] in
  let srp = Static_route.make g ~dest:0 ~routes:[ (2, 1) ] in
  let sol = Solver.solve_exn srp in
  Alcotest.(check bool) "black hole from 2" true (Properties.black_hole sol 2);
  Alcotest.(check bool) "2 not reachable" false (Properties.reachable sol 2)

let test_path_lengths () =
  let sol = Solver.solve_exn (Rip.make (diamond ()) ~dest:0) in
  Alcotest.(check (list int)) "two 2-hop paths" [ 2; 2 ]
    (Properties.path_lengths sol ~src:3)

let test_routing_loop_detection () =
  let g = Graph.of_links ~n:3 [ (0, 1); (1, 2) ] in
  let srp = Static_route.make g ~dest:0 ~routes:[ (1, 2); (2, 1) ] in
  let sol = Solver.solve_exn srp in
  Alcotest.(check bool) "loop" true (Properties.has_routing_loop sol);
  let ok = Solver.solve_exn (Rip.make g ~dest:0) in
  Alcotest.(check bool) "no loop" false (Properties.has_routing_loop ok)

let test_waypointing () =
  let g = Graph.of_links ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let sol = Solver.solve_exn (Rip.make g ~dest:0) in
  Alcotest.(check bool) "through 1" true
    (Properties.waypointed sol ~src:3 ~waypoints:[ 1 ]);
  Alcotest.(check bool) "not through 99" false
    (Properties.waypointed sol ~src:3 ~waypoints:[ 99 ])

let test_multipath_consistency () =
  let sol = Solver.solve_exn (Rip.make (diamond ()) ~dest:0) in
  Alcotest.(check bool) "consistent" true
    (Properties.multipath_consistent sol ~src:3)

let test_multipath_inconsistency () =
  (* static multipath: 3 forwards to both 1 and 2; 1 reaches d, 2 does not *)
  let g = Graph.of_links ~n:4 [ (0, 1); (1, 3); (2, 3) ] in
  let srp = Static_route.make g ~dest:0 ~routes:[ (3, 1); (3, 2); (1, 0) ] in
  let sol = Solver.solve_exn srp in
  Alcotest.(check int) "two fwd edges" 2 (List.length (Solution.fwd sol 3));
  Alcotest.(check bool) "inconsistent" false
    (Properties.multipath_consistent sol ~src:3)

(* --- data plane --------------------------------------------------------- *)

let test_dataplane_fattree () =
  let ft = Generators.fattree ~k:4 in
  let net = Synthesis.fattree_shortest_path ft in
  let dp = Dataplane.of_network net in
  Alcotest.(check int) "all classes solved" 8 (Dataplane.ecs_solved dp);
  (* every router holds an entry for every remote class: 8 ECs, the
     origin itself holds 7 *)
  let e0 = ft.Generators.ft_edge.(0) in
  Alcotest.(check int) "origin fib" 7 (List.length (Dataplane.fib dp e0));
  let agg = ft.Generators.ft_agg.(0) in
  Alcotest.(check int) "agg fib" 8 (List.length (Dataplane.fib dp agg));
  (* trace a packet across pods *)
  let dst_addr = Ipv4.of_string "10.0.0.1" in
  let src = ft.Generators.ft_edge.(7) in
  (match Dataplane.trace dp ~src dst_addr with
  | Dataplane.Delivered path ->
    Alcotest.(check int) "5-hop fattree path" 5 (List.length path);
    Alcotest.(check (option int)) "ends at origin" (Some e0)
      (List.nth_opt path (List.length path - 1))
  | _ -> Alcotest.fail "packet not delivered");
  (* ECMP: all 4 equal-cost paths enumerated *)
  let paths = Dataplane.trace_all dp ~src dst_addr in
  Alcotest.(check int) "ecmp paths" 4 (List.length paths);
  (* an address outside every announced prefix is dropped at the source *)
  match Dataplane.trace dp ~src (Ipv4.of_string "192.168.1.1") with
  | Dataplane.Dropped [ s ] -> Alcotest.(check int) "dropped at src" src s
  | _ -> Alcotest.fail "expected an immediate drop"

let test_dataplane_static_loop_detected () =
  let g = Graph.of_links ~n:3 [ (0, 1); (1, 2) ] in
  let p = Prefix.of_string "10.0.0.0/24" in
  let routers =
    [|
      { (Device.default_router "d") with Device.originated = [ p ] };
      { (Device.default_router "r1") with Device.static_routes = [ (p, 2) ] };
      { (Device.default_router "r2") with Device.static_routes = [ (p, 1) ] };
    |]
  in
  let net = { Device.graph = g; routers } in
  let dp = Dataplane.of_network ~protocol:`Multi net in
  match Dataplane.trace dp ~src:1 (Ipv4.of_string "10.0.0.1") with
  | Dataplane.Looped path ->
    Alcotest.(check bool) "loop path revisits" true (List.length path >= 3)
  | _ -> Alcotest.fail "expected a loop"

let test_dataplane_on_emitted_abstract_configs () =
  (* the compressed network's configurations produce a data plane whose
     traces deliver exactly when the concrete ones do *)
  let net = Synthesis.fattree_shortest_path (Generators.fattree ~k:4) in
  let ec = List.hd (Ecs.compute net) in
  let t = (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction in
  let emitted = Abstract_config.emit t in
  let dp = Dataplane.of_network emitted in
  let addr = Ipv4.of_string "10.0.0.1" in
  for a = 0 to Abstraction.n_abstract t - 1 do
    if a <> t.Abstraction.abs_dest then
      match Dataplane.trace dp ~src:a addr with
      | Dataplane.Delivered _ -> ()
      | _ -> Alcotest.failf "abstract node %d cannot deliver" a
  done

let test_flows_fields () =
  let ft = Generators.fattree ~k:4 in
  let net = Synthesis.fattree_shortest_path ft in
  let ec = List.hd (Ecs.compute net) in
  let f = Reachability.concrete_flows net ~ec in
  Alcotest.(check int) "all 19 sources reach" 19 f.Reachability.sources_reaching;
  (* same-pod edges: 2 paths; remote-pod edges: 4; aggs and cores fewer *)
  Alcotest.(check bool) "multipath inflates path count" true
    (f.Reachability.total_paths > 19);
  let a = Reachability.abstract_flows net ~ec in
  Alcotest.(check int) "5 abstract roles reach" 5 a.Reachability.sources_reaching;
  Alcotest.(check bool) "abstract path count tiny" true
    (a.Reachability.total_paths <= 5)

(* --- address sets ------------------------------------------------------- *)

let test_addr_set_basics () =
  let p8 = Addr_set.of_prefix (Prefix.of_string "10.0.0.0/8") in
  let p24 = Addr_set.of_prefix (Prefix.of_string "10.1.2.0/24") in
  Alcotest.(check bool) "mem" true (Addr_set.mem (Ipv4.of_string "10.1.2.3") p24);
  Alcotest.(check bool) "not mem" false
    (Addr_set.mem (Ipv4.of_string "10.1.3.0") p24);
  Alcotest.(check bool) "subset union" true
    (Addr_set.equal p8 (Addr_set.union p8 p24));
  Alcotest.(check bool) "inter" true
    (Addr_set.equal p24 (Addr_set.inter p8 p24));
  Alcotest.(check (float 0.001)) "count /24" 256.0 (Addr_set.count p24);
  Alcotest.(check (float 1.0)) "count /8" (float_of_int (1 lsl 24))
    (Addr_set.count p8);
  let holed = Addr_set.diff p8 p24 in
  Alcotest.(check (float 1.0)) "count diff"
    (float_of_int ((1 lsl 24) - 256))
    (Addr_set.count holed);
  Alcotest.(check bool) "hole excluded" false
    (Addr_set.mem (Ipv4.of_string "10.1.2.3") holed);
  Alcotest.(check bool) "empty" true
    (Addr_set.is_empty (Addr_set.inter p24 (Addr_set.complement p24)));
  match Addr_set.choose p24 with
  | Some a -> Alcotest.(check bool) "choose in set" true (Addr_set.mem a p24)
  | None -> Alcotest.fail "choose"

let test_addr_set_to_prefixes_roundtrip () =
  let ps =
    [ "10.0.0.0/9"; "10.128.0.0/10"; "192.168.1.0/24" ]
    |> List.map Prefix.of_string
  in
  let s = Addr_set.of_prefixes ps in
  let cover = Addr_set.to_prefixes s in
  Alcotest.(check bool) "cover equals set" true
    (Addr_set.equal s (Addr_set.of_prefixes cover));
  (* the cover is minimal here: 10/9 + 10.128/10 do not merge *)
  Alcotest.(check int) "cover size" 3 (List.length cover)

let prop_addr_set_boolean_algebra =
  let gen_prefix =
    QCheck.Gen.(
      let* len = int_range 0 16 in
      let* hi = int_range 0 255 in
      let* mid = int_range 0 255 in
      return (Prefix.make (Ipv4.of_octets hi mid 0 0) len))
  in
  QCheck.Test.make ~name:"address sets agree with prefix semantics" ~count:200
    (QCheck.make
       QCheck.Gen.(triple gen_prefix gen_prefix (int_range 0 0xFFFFFF)))
    (fun (p, q, bits) ->
      let a = Ipv4.of_int32_bits (bits * 256) in
      let sp = Addr_set.of_prefix p and sq = Addr_set.of_prefix q in
      Addr_set.mem a (Addr_set.union sp sq)
      = (Prefix.mem a p || Prefix.mem a q)
      && Addr_set.mem a (Addr_set.inter sp sq)
         = (Prefix.mem a p && Prefix.mem a q)
      && Addr_set.mem a (Addr_set.diff sp sq)
         = (Prefix.mem a p && not (Prefix.mem a q)))

let test_dataplane_address_queries () =
  let ft = Generators.fattree ~k:4 in
  let net = Synthesis.fattree_shortest_path ft in
  let dp = Dataplane.of_network net in
  let e0 = ft.Generators.ft_edge.(0) in
  let agg = ft.Generators.ft_agg.(0) in
  (* everything agg0_0 sends down to edge0_0 is edge0_0's own class *)
  let down = Dataplane.addresses_via dp agg e0 in
  Alcotest.(check (float 0.001)) "one /24 downstream" 256.0
    (Addr_set.count down);
  Alcotest.(check bool) "it is 10.0.0.0/24" true
    (Addr_set.equal down (Addr_set.of_prefix (Prefix.of_string "10.0.0.0/24")));
  (* the full Batfish query: what can edge3_1 send that edge0_0 receives *)
  let src = ft.Generators.ft_edge.(7) in
  let delivered = Dataplane.addresses_delivered dp ~src ~dst:e0 in
  Alcotest.(check bool) "delivers exactly the origin class" true
    (Addr_set.equal delivered
       (Addr_set.of_prefix (Prefix.of_string "10.0.0.0/24")))

(* --- robust (all-solutions) verification ------------------------------ *)

let gadget_srp () =
  (* Figure 2 gadget: multiple stable solutions *)
  let g =
    Graph.of_links ~n:5 [ (0, 1); (0, 2); (0, 3); (4, 1); (4, 2); (4, 3) ]
  in
  let policy u v (a : Bgp.attr) =
    if u >= 1 && u <= 3 && v = 4 then Some { a with Bgp.lp = 200 } else Some a
  in
  Bgp.make ~policy g ~dest:0

let test_robust_reachability_holds () =
  match
    Robust.for_all_solutions (gadget_srp ()) (fun sol ->
        List.for_all (fun u -> Properties.reachable sol u) [ 1; 2; 3; 4 ])
  with
  | Robust.Holds -> ()
  | Robust.Fails _ -> Alcotest.fail "reachability should hold in all solutions"
  | Robust.Sampled_holds _ -> Alcotest.fail "should be exhaustive"

let test_robust_waypoint_solution_dependent () =
  (* "b1 forwards through a" is true in some stable solutions and false in
     others — a property one must not conclude from a single simulation *)
  let prop sol = Properties.waypointed sol ~src:1 ~waypoints:[ 4 ] in
  (match Robust.for_all_solutions (gadget_srp ()) prop with
  | Robust.Fails _ -> ()
  | _ -> Alcotest.fail "expected a counterexample solution");
  match Robust.exists_solution (gadget_srp ()) prop with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a witness solution"

let test_robust_agrees_with_abstraction () =
  (* quantifying over abstract solutions gives the same verdict *)
  let net = Synthesis.fattree_shortest_path (Generators.fattree ~k:4) in
  let ec = List.hd (Ecs.compute net) in
  let t = (Bonsai_api.compress_ec_exn net ec).Bonsai_api.abstraction in
  let abs_srp = Abstraction.bgp_srp t in
  match
    Robust.for_all_solutions abs_srp (fun sol ->
        List.for_all
          (fun a -> Properties.reachable sol a)
          (List.init (Abstraction.n_abstract t) Fun.id))
  with
  | Robust.Holds -> ()
  | Robust.Fails _ | Robust.Sampled_holds _ ->
    Alcotest.fail "abstract reachability should hold exhaustively"

let test_robust_sampling_on_large () =
  let net = Synthesis.ring_bgp ~n:30 in
  let ec = List.hd (Ecs.compute net) in
  let srp = Compile.bgp_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix in
  match
    Robust.for_all_solutions ~tries:4 srp (fun sol ->
        Properties.reachable sol 15)
  with
  | Robust.Sampled_holds n -> Alcotest.(check bool) "sampled" true (n >= 1)
  | _ -> Alcotest.fail "expected sampling on a 30-node network"

(* --- reachability engine --------------------------------------------- *)

let test_concrete_all_pairs_fattree () =
  let ft = Generators.fattree ~k:4 in
  let net = Synthesis.fattree_shortest_path ft in
  let r = Reachability.concrete_all_pairs ~max_ecs:2 net in
  Alcotest.(check int) "ecs" 2 r.Reachability.ecs_done;
  Alcotest.(check int) "pairs" (2 * 19) r.Reachability.pairs;
  Alcotest.(check int) "all reachable" 0 r.Reachability.unreachable

let test_abstract_all_pairs_fattree () =
  let ft = Generators.fattree ~k:4 in
  let net = Synthesis.fattree_shortest_path ft in
  let r = Reachability.abstract_all_pairs ~max_ecs:2 net in
  Alcotest.(check int) "ecs" 2 r.Reachability.ecs_done;
  (* 6 abstract nodes per class: 5 non-dest pairs each *)
  Alcotest.(check int) "abstract pairs" (2 * 5) r.Reachability.pairs;
  Alcotest.(check int) "all reachable" 0 r.Reachability.unreachable

let test_queries_agree () =
  let ft = Generators.fattree ~k:4 in
  let net = Synthesis.fattree_shortest_path ft in
  let ec = List.hd (Ecs.compute net) in
  List.iter
    (fun src ->
      Alcotest.(check bool) "query agreement" 
        (Reachability.concrete_query net ~src ~ec)
        (Reachability.abstract_query net ~src ~ec))
    [ 0; 5; 11; 19 ]

let test_acl_blocks_reachability_both_sides () =
  (* drop the EC's prefix on every edge-switch uplink in one pod: traffic
     from that pod cannot reach the destination in pod 0, and the abstract
     network agrees *)
  let ft = Generators.fattree ~k:4 in
  let net = Synthesis.fattree_shortest_path ft in
  let ec = List.hd (Ecs.compute net) in
  let dest = Ecs.single_origin ec in
  let block : Acl.t = [ { permit = false; prefix = ec.Ecs.ec_prefix } ] in
  let pod3_edges =
    Array.to_list ft.Generators.ft_edge
    |> List.filter (fun v -> ft.Generators.ft_pod.(v) = 3 && v <> dest)
  in
  let routers = Array.copy net.Device.routers in
  List.iter
    (fun v ->
      routers.(v) <-
        {
          (routers.(v)) with
          Device.acl_out =
            Array.to_list (Graph.succ net.Device.graph v)
            |> List.map (fun u -> (u, block));
        })
    pod3_edges;
  let net = { net with Device.routers } in
  let src = List.hd pod3_edges in
  Alcotest.(check bool) "concrete blocked" false
    (Reachability.concrete_query net ~src ~ec);
  Alcotest.(check bool) "abstract blocked" false
    (Reachability.abstract_query net ~src ~ec);
  (* an unblocked pod still reaches *)
  let src' =
    Array.to_list ft.Generators.ft_edge
    |> List.find (fun v -> ft.Generators.ft_pod.(v) = 1)
  in
  Alcotest.(check bool) "other pod fine (concrete)" true
    (Reachability.concrete_query net ~src:src' ~ec);
  Alcotest.(check bool) "other pod fine (abstract)" true
    (Reachability.abstract_query net ~src:src' ~ec)

let test_timeout_reported () =
  let net = Synthesis.ring_bgp ~n:40 in
  let r = Reachability.concrete_all_pairs ~timeout_s:(-1.0) net in
  Alcotest.(check bool) "timed out" true r.Reachability.timed_out

let prop_all_pairs_agree_on_random_networks =
  QCheck.Test.make ~name:"concrete vs abstract verdicts agree" ~count:30
    QCheck.(pair (int_range 3 12) (int_range 0 1000))
    (fun (n, seed) ->
      let net = Synthesis.random_network ~n ~seed in
      let ec = List.hd (Ecs.compute net) in
      let r = Bonsai_api.compress_ec_exn net ec in
      let t = r.Bonsai_api.abstraction in
      match Solver.solve (Compile.bgp_srp net ~dest:0 ~dest_prefix:ec.Ecs.ec_prefix) with
      | Error _ -> QCheck.assume_fail ()
      | Ok (sol, _) ->
        let outcome, abs_sol = Equivalence.check_bgp t sol in
        (match (outcome.Equivalence.ok, abs_sol) with
        | true, Some abs_sol ->
          List.for_all
            (fun u ->
              Properties.reachable sol u
              = Properties.reachable abs_sol outcome.Equivalence.fr.(u))
            (List.init n Fun.id)
        | _ -> false))

let () =
  Alcotest.run "verify"
    [
      ( "properties",
        [
          Alcotest.test_case "reachable/black hole" `Quick
            test_reachable_and_blackhole;
          Alcotest.test_case "partial-path black hole" `Quick
            test_black_hole_on_partial_path;
          Alcotest.test_case "path lengths" `Quick test_path_lengths;
          Alcotest.test_case "loops" `Quick test_routing_loop_detection;
          Alcotest.test_case "waypointing" `Quick test_waypointing;
          Alcotest.test_case "multipath consistent" `Quick
            test_multipath_consistency;
          Alcotest.test_case "multipath inconsistent" `Quick
            test_multipath_inconsistency;
        ] );
      ( "reachability-engine",
        [
          Alcotest.test_case "concrete all-pairs" `Quick
            test_concrete_all_pairs_fattree;
          Alcotest.test_case "abstract all-pairs" `Quick
            test_abstract_all_pairs_fattree;
          Alcotest.test_case "queries agree" `Quick test_queries_agree;
          Alcotest.test_case "acl blocks both sides" `Quick
            test_acl_blocks_reachability_both_sides;
          Alcotest.test_case "timeout" `Quick test_timeout_reported;
        ] );
      ( "dataplane",
        [
          Alcotest.test_case "fattree fibs + traces" `Quick test_dataplane_fattree;
          Alcotest.test_case "static loop" `Quick
            test_dataplane_static_loop_detected;
          Alcotest.test_case "abstract configs" `Quick
            test_dataplane_on_emitted_abstract_configs;
        ] );
      ( "flows",
        [ Alcotest.test_case "fields" `Quick test_flows_fields ] );
      ( "addr-set",
        [
          Alcotest.test_case "boolean ops" `Quick test_addr_set_basics;
          Alcotest.test_case "prefix cover" `Quick
            test_addr_set_to_prefixes_roundtrip;
          Alcotest.test_case "dataplane queries" `Quick
            test_dataplane_address_queries;
        ] );
      ( "robust",
        [
          Alcotest.test_case "reachability all solutions" `Quick
            test_robust_reachability_holds;
          Alcotest.test_case "solution-dependent waypoint" `Quick
            test_robust_waypoint_solution_dependent;
          Alcotest.test_case "abstract agreement" `Quick
            test_robust_agrees_with_abstraction;
          Alcotest.test_case "sampling fallback" `Quick
            test_robust_sampling_on_large;
        ] );
      ( "agreement",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_all_pairs_agree_on_random_networks;
            prop_addr_set_boolean_algebra;
          ] );
    ]
